"""The discrete-time co-execution engine.

Runs one *target* program together with workload programs on a simulated
machine.  Matches the paper's experimental protocol (Section 6):

* target and workloads start together;
* workload programs restart when they finish, so contention persists
  until the target completes ("each program runs until the other
  finishes");
* every job consults its thread-selection policy at each parallel-region
  entry, observing the environment through the OS statistics sampler;
* completed regions are reported back to the policy (reactive policies
  feed on these observations).

The engine advances on a fixed tick grid of ``dt`` simulated seconds.
Policy consultations see statistics from the *previous* tick — exactly
the one-sample lag a real runtime reading ``/proc`` would have.

Two stepping modes share that tick-grid semantics:

* ``stepping="fixed"`` — the reference implementation: one loop
  iteration per tick, every statistic updated incrementally.
* ``stepping="event"`` (default) — event-driven: between *events*
  (phase completions, availability transitions, job arrivals, timeline
  samples) the system's dynamics are piecewise-constant, so the engine
  computes the next event horizon and advances all jobs across the
  whole span at once — closed-form exponential decay for the OS
  statistics (:meth:`repro.sched.stats.SystemStatsSampler.advance_span`)
  and vectorized work accrual (:mod:`repro.runtime.kernels`).  Event
  ticks themselves run through the identical per-tick code path, so
  selection logs match the fixed-tick reference decision for decision
  and all statistics agree to floating-point accumulation order
  (``tests/runtime/test_stepping.py`` proves this over every scenario).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import math

from ..analysis.determinism import StateDigest, sanitize_active
from ..compiler.features import CodeFeatures, extract_code_features
from ..compiler.passes import analyze_module
from ..core.policies.base import PolicyContext, RegionReport, ThreadPolicy
from ..machine.affinity import AffinityPolicy
from ..machine.machine import SimMachine
from ..programs.model import ProgramInstance, ProgramModel, Region
from ..sched.scheduler import JobDemand, ProportionalShareScheduler
from ..sched.stats import SystemStatsSampler
from ..workload.arrivals import next_start_time
from . import kernels

#: Supported stepping modes (see module docstring).
STEPPING_MODES = ("event", "fixed")

#: Memory intensity attributed to serial glue (I/O, convergence checks).
SERIAL_MEMORY_INTENSITY = 0.05

#: Spin-waiting waste at synchronisation points.  OpenMP barriers busy-
#: wait by default: on an oversubscribed machine a thread that reaches a
#: barrier spins — consuming its CPU share — until the last descheduled
#: peer arrives.  The wasted fraction grows with the number of threads
#: (more peers to wait for) and with the oversubscription ratio (each
#: peer's turnaround is that much longer).  This is the physical reason
#: "spawning many threads slows down the program" for barrier-heavy
#: codes under load, while costing nothing on an idle machine (r = 1).
SPIN_WASTE_COEFF = 6.0

#: Upper bound on the fraction of granted CPU lost to spinning.  Real
#: runtimes eventually yield (passive waiting, sched_yield in the spin
#: loop), so waste saturates instead of starving the job completely.
MAX_SPIN_WASTE = 0.8

#: Precomputed ``1 - MAX_SPIN_WASTE`` (hot-path constant folding).
_SPIN_BASE = 1.0 - MAX_SPIN_WASTE

#: Largest active-row count for which a fast-forward span is applied
#: with scalar Python instead of the NumPy kernels (re-exported from
#: :mod:`repro.runtime.kernels`, where the batch-aware threshold now
#: lives).  Both paths compute the same products in the same order, so
#: results are bit-identical.
SCALAR_SPAN_MAX = kernels.SCALAR_SPAN_MAX


def _grid_horizon(limit: float, time: float, dt: float) -> float:
    """Whole ticks from ``time`` that stay safely short of ``limit``.

    Conservative by one tick: the ``- 1`` absorbs float rounding in the
    ``(limit - time) / dt`` division so a span never swallows the tick
    at which a grid predicate (``time >= limit``-style) would first
    fire.  The event tick itself then runs through the per-tick path.
    """
    if math.isinf(limit):
        return math.inf
    return max(0.0, math.floor((limit - time) / dt) - 1.0)


@dataclass
class JobSpec:
    """One program to run: model + policy + role.

    ``start_time`` delays the job's arrival: it consumes no resources
    and is invisible to the statistics until then (job churn — new work
    arriving mid-run — is how real shared systems behave, Figure 1).
    """

    program: ProgramModel
    policy: ThreadPolicy
    job_id: str = ""
    is_target: bool = False
    restart: bool = False
    affinity: Optional[AffinityPolicy] = None
    start_time: float = 0.0

    def __post_init__(self) -> None:
        if not self.job_id:
            self.job_id = self.program.name
        if self.start_time < 0:
            raise ValueError(
                f"job {self.job_id!r}: start_time cannot be negative"
            )


@dataclass(frozen=True)
class TimelinePoint:
    """Periodic sample of system state (feeds the Figure 2 plots)."""

    time: float
    available: int
    target_threads: int
    workload_threads: int
    env_norm: float


@dataclass(frozen=True)
class Selection:
    """One policy decision at a region entry."""

    time: float
    job_id: str
    loop_name: str
    threads: int


@dataclass
class SimulationResult:
    """Outcome of one co-execution run."""

    target_id: Optional[str]
    target_time: Optional[float]
    duration: float
    job_times: Dict[str, float]
    workload_runs: Dict[str, int]
    workload_work: Dict[str, float]
    #: CPU-seconds each job consumed (granted processor time).  Useful
    #: work retired is in ``workload_work`` / per-program totals; the
    #: ratio is the job's efficiency (spinning and contention burn CPU
    #: without retiring work).
    cpu_time: Dict[str, float] = field(default_factory=dict)
    timeline: List[TimelinePoint] = field(default_factory=list)
    selections: List[Selection] = field(default_factory=list)
    timed_out: bool = False

    @property
    def workload_throughput(self) -> float:
        """Aggregate workload core-seconds retired per simulated second."""
        if self.duration <= 0:
            return 0.0
        return sum(self.workload_work.values()) / self.duration

    def target_selections(self) -> List[Selection]:
        return [s for s in self.selections
                if s.job_id == self.target_id]

    def efficiency(self, job_id: str, work_done: float) -> float:
        """Useful work per CPU-second for one job (0 when unknown)."""
        cpu = self.cpu_time.get(job_id, 0.0)
        if cpu <= 0:
            return 0.0
        return work_done / cpu


#: Per-module memo of static analysis + code features, keyed by module
#: identity.  Static analysis depends only on the IR, which is immutable
#: in practice and shared across every scaled copy of a program
#: (``scale_program`` only replaces the iteration count), so a grid of
#: runs pays the analysis cost once per program instead of once per job
#: per run.  Entries are evicted when their module is garbage collected.
_CODE_FEATURE_MEMO: Dict[int, Dict[str, CodeFeatures]] = {}


def module_code_features(module) -> Dict[str, CodeFeatures]:
    """Code features of every parallel loop in ``module``, memoised."""
    key = id(module)
    cached = _CODE_FEATURE_MEMO.get(key)
    if cached is None:
        analysis = analyze_module(module)
        cached = {
            loop_name: extract_code_features(module, loop_name, analysis)
            for loop_name in analysis.loops
        }
        _CODE_FEATURE_MEMO[key] = cached
        weakref.finalize(module, _CODE_FEATURE_MEMO.pop, key, None)
    return cached


class _JobState:
    """Mutable per-job runtime bookkeeping."""

    def __init__(self, spec: JobSpec):
        self.spec = spec
        self.instance: ProgramInstance = spec.program.instantiate(
            job_id=spec.job_id
        )
        self.threads = 1
        self.consult_pending = False
        self.region_elapsed = 0.0
        self.completed_runs = 0
        self.run_counted = False
        self.work_done = 0.0
        self.cpu_time = 0.0
        self.finish_time: Optional[float] = None
        self.code_features: Dict[str, CodeFeatures] = (
            module_code_features(spec.program.module)
        )
        #: Reusable demand per (loop_name, threads) phase; demands are
        #: immutable and identical across revisits of the same phase.
        self._demand_memo: Dict[tuple, JobDemand] = {}
        #: Mirror of ``instance.current_region``, refreshed at every
        #: phase transition (advance, restart) so hot-path readers skip
        #: the property chain.
        self.region: Optional[Region] = self.instance.current_region
        #: Progress rate from this job's latest ``_rate`` evaluation
        #: this tick; valid for the span pre-pass whenever the tick
        #: ended clean (no phase change ⇒ the last evaluation used
        #: exactly the pre-pass inputs).
        self._tick_rate = 0.0
        #: ``_rate`` memo: the rate is a pure function of (allocation,
        #: region, threads) — ``share`` derives from the allocation —
        #: and those recur identically across long stretches of ticks
        #: (allocations are memoised objects), so three identity checks
        #: replace the arithmetic.
        self._rc_alloc: object = None
        self._rc_region: Optional[Region] = None
        self._rc_threads = -1
        self._rc_value = 0.0
        #: Second memo slot (the previous entry): within one tick the
        #: rate is queried for the serial region and the active parallel
        #: region alternately, so two slots make both queries hit.
        self._rc2_alloc: object = None
        self._rc2_region: Optional[Region] = None
        self._rc2_threads = -1
        self._rc2_value = 0.0

    started = False

    @property
    def active(self) -> bool:
        return self.started and not self.instance.finished


class CoExecutionEngine:
    """Runs a set of jobs on a machine until the target finishes."""

    def __init__(
        self,
        machine: SimMachine,
        jobs: Sequence[JobSpec],
        dt: float = 0.1,
        max_time: float = 3600.0,
        timeline_period: Optional[float] = 1.0,
        tracer=None,
        stepping: str = "event",
    ):
        if dt <= 0:
            raise ValueError("dt must be positive")
        if max_time <= 0:
            raise ValueError("max_time must be positive")
        if timeline_period is not None and timeline_period <= 0:
            raise ValueError("timeline_period must be positive or None")
        if stepping not in STEPPING_MODES:
            raise ValueError(
                f"unknown stepping mode {stepping!r}; "
                f"expected one of {STEPPING_MODES}"
            )
        ids = [spec.job_id for spec in jobs]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate job ids: {ids}")
        targets = [spec for spec in jobs if spec.is_target]
        if len(targets) > 1:
            raise ValueError("at most one target job is supported")
        self._machine = machine
        self._specs = list(jobs)
        self._dt = dt
        self._max_time = max_time
        self._timeline_period = timeline_period
        self._scheduler = ProportionalShareScheduler(machine.topology)
        self._target_id = targets[0].job_id if targets else None
        self._tracer = tracer
        self._stepping = stepping
        self._dirty = True
        #: Rolling hash over the decision-relevant event stream (policy
        #: consultations, run completions, the final result), active
        #: only under ``REPRO_SANITIZE=1``.  Two runs of the same
        #: scenario — in particular the event-driven and fixed-tick
        #: interleavings — must produce identical digests; the executor
        #: cross-checks them (see ``repro.exec.request``).
        self.state_digest: Optional[StateDigest] = (
            StateDigest() if sanitize_active() else None
        )

    def run(self) -> SimulationResult:
        """Execute the co-execution scenario and collect results.

        Drives :meth:`span_steps` to completion, applying each yielded
        span plan immediately — the solo execution mode.  A batch
        driver (:mod:`repro.exec.batch`) instead interleaves the
        generators of several engines and applies their plans together
        through one batched kernel invocation.
        """
        steps = self.span_steps()
        while True:
            try:
                plan = next(steps)
            except StopIteration as stop:
                return stop.value
            plan.apply()

    def span_steps(self):
        """Generator form of the tick loop for external span drivers.

        Yields a :class:`repro.runtime.kernels.SpanPlan` at every
        event-free fast-forward point; the caller must apply the plan
        (solo or batched — bit-identical either way) before resuming
        the generator.  The generator's return value is the
        :class:`SimulationResult`.
        """
        return self._run_loop(event=self._stepping == "event")

    def _run_loop(self, event: bool):
        """The tick loop; ``event=True`` adds event-free fast-forwards.

        Every tick that *executes* runs the identical code path in both
        modes — arrivals, consults, scheduling, statistics, advance,
        completions.  Event mode merely replaces runs of ticks in which
        provably nothing decision-relevant happens (no phase completes,
        availability and demands hold, no arrival, no timeline sample)
        with one closed-form span update, so both modes make the same
        decisions at the same simulated times.
        """
        dt = self._dt
        states = {spec.job_id: _JobState(spec) for spec in self._specs}
        for state in states.values():
            state.spec.policy.reset()
            state.started = state.spec.start_time <= 0.0
            state.consult_pending = state.started
        stats = SystemStatsSampler(self._machine.topology)
        stats.prime(float(len(states)))

        timeline: List[TimelinePoint] = []
        selections: List[Selection] = []
        time = 0.0
        # ``timeline_period=None`` disables sampling entirely (the
        # executor does this: RunSummary discards the timeline, and
        # sampling would otherwise cap event-mode spans at one period).
        next_timeline = (
            0.0 if self._timeline_period is not None else math.inf
        )
        timed_out = False
        # The tracer needs one record per tick, which fast-forwarding
        # would elide; fall back to per-tick stepping under a tracer.
        fast_forward = event and self._tracer is None
        # Demand-dirty flag: set by arrivals, consults, phase boundaries
        # and restarts — the only operations that can change the demand
        # mix.  While it stays clear, the previous tick's demands and
        # allocation are provably still current, which both licenses the
        # event-mode fast-forward and lets event mode skip rebuilding
        # and re-hashing them every tick.
        self._dirty = True
        # Tick allocations are pure functions of (demands, available);
        # co-execution spends long stretches in the same demand mix, so
        # memoising them skips most scheduler work.  Demands hash by
        # value, so reused demand objects and rebuilt equals both hit.
        alloc_memo: Dict[tuple, object] = {}

        def allocate(demands: List[JobDemand], available: int):
            key = (available, tuple(demands))
            allocation = alloc_memo.get(key)
            if allocation is None:
                allocation = self._scheduler.allocate(demands, available)
                alloc_memo[key] = allocation
            return allocation

        # Priming tick so the first consultation has statistics to read.
        all_states = list(states.values())
        available = self._machine.available(time)
        active = [s for s in all_states if s.active]
        demands = self._demands(active)
        allocation = allocate(demands, available)
        stats.update(time, 0.0, demands, allocation)

        last_available = available
        # Availability probe memo (event mode): the schedule is constant
        # until ``avail_next``, so most ticks replace the probe with one
        # float compare.  ``-inf`` forces the first real probe.
        avail_next = -math.inf
        # After a failed span attempt, every later attempt must fail too
        # until some event shifts a horizon (on event-free ticks all of
        # them shrink monotonically), so the arithmetic is skipped until
        # the dirty flag, an availability edge or a timeline sample
        # reopens the window.
        span_blocked = False

        while True:
            if event:
                if time >= avail_next:
                    available = self._machine.available(time)
                    avail_next = self._machine.next_change(time)
                    span_blocked = False
            else:
                available = self._machine.available(time)

            # 0. Job arrivals.
            for state in all_states:
                if not state.started and state.spec.start_time <= time:
                    state.started = True
                    state.consult_pending = True
                    self._dirty = True

            # The tick's active set: arrivals are in; only _advance can
            # deactivate a job, and it re-checks per job.
            active = [
                s for s in all_states
                if s.started and not s.instance.finished
            ]

            # 1. Policy consultations (using last tick's statistics).
            for state in active:
                if state.consult_pending:
                    self._consult(state, stats, available, time, selections)

            # 2. Schedule this tick.  When nothing demand-relevant
            # happened since the last tick and availability held, the
            # previous allocation is still exact — event mode skips the
            # rebuild + memo hash; fixed mode always recomputes (it is
            # the reference implementation).
            if event and not self._dirty and available == last_available:
                pass  # `demands` and `allocation` carry over unchanged.
            else:
                demands = self._demands(active)
                allocation = allocate(demands, available)
            last_available = available
            self._dirty = False
            stats.update(time, dt, demands, allocation)
            if self._tracer is not None:
                self._tracer.record(time, available, demands, allocation)

            # 3. Timeline sampling.
            if time >= next_timeline:
                timeline.append(self._timeline_point(
                    time, available, states, stats
                ))
                next_timeline += self._timeline_period
                span_blocked = False

            # 4. Advance every job by one tick.  Phase boundaries inside
            # the tick are handled exactly (work conservation), with
            # policies consulted the moment a region is entered.  CPU
            # time is charged at tick granularity: what the scheduler
            # granted is what the job occupied (spinning included).
            allocs = allocation.allocations
            for state in active:
                self._advance(
                    state, allocs[state.spec.job_id], dt, time, stats,
                    available, selections,
                )

            time += dt

            # 5. Handle completions (finish times were recorded exactly
            # by _advance; here we count the run and restart workloads).
            for state in states.values():
                if state.instance.finished and not state.run_counted:
                    state.run_counted = True
                    if state.finish_time is None:
                        state.finish_time = time
                    state.completed_runs += 1
                    if self.state_digest is not None:
                        self.state_digest.fold("complete", {
                            "job": state.spec.job_id,
                            "runs": state.completed_runs,
                        })
                    if state.spec.restart and not self._target_done(states):
                        state.instance.restart()
                        state.region = state.instance.current_region
                        state.finish_time = None
                        state.run_counted = False
                        state.consult_pending = True
                        state.threads = 1
                        state.region_elapsed = 0.0
                        self._dirty = True

            if self._target_done(states):
                break
            if self._target_id is None and all(
                s.started and s.instance.finished
                for s in states.values()
            ):
                break
            if time >= self._max_time:
                timed_out = True
                break

            # 6. Event-driven fast-forward: if nothing decision-relevant
            # can happen for a while, advance the whole event-free span
            # in closed form (see module docstring).  The span reuses
            # this tick's allocation, which the clear dirty flag proves
            # the next tick would recompute identically; every other
            # event source becomes a horizon on the span length.
            if not fast_forward:
                continue
            if self._dirty:
                span_blocked = False
                continue
            if span_blocked:
                continue
            # Cheap scalar pre-pass: the earliest phase completion in
            # tick units.  A clean tick means no phase changed, so every
            # active job's final ``_rate`` evaluation this tick (cached
            # in ``_tick_rate``) used exactly the current (region,
            # threads, allocation) — no recomputation, and no job can
            # have finished (``active`` needs no re-filtering).  The
            # rows double as the span working set.
            min_ticks = math.inf
            span_rows = []
            allocs = allocation.allocations
            for state in active:
                instance = state.instance
                rate = state._tick_rate
                span_rows.append(
                    (state, instance, allocs[state.spec.job_id], rate,
                     state.region is None)
                )
                if rate > kernels.RATE_EPSILON:
                    ticks_left = instance.remaining / (rate * dt)
                    if ticks_left < min_ticks:
                        min_ticks = ticks_left
            if math.isinf(min_ticks):
                horizon = math.inf
            else:
                horizon = max(
                    0.0,
                    math.ceil(min_ticks - kernels.HORIZON_FUZZ) - 1.0,
                )
            if horizon >= 1:
                # `time` already points at the *next* tick; the last
                # executed tick was one dt ago, which is what the
                # arrival probe measures against.  ``avail_next`` is the
                # first instant the cached availability stops holding.
                t_last = time - dt
                horizon = min(
                    horizon,
                    _grid_horizon(avail_next, time, dt),
                    _grid_horizon(
                        next_start_time(
                            [s.spec.start_time for s in all_states
                             if not s.started],
                            t_last,
                        ),
                        time, dt,
                    ),
                    _grid_horizon(next_timeline, time, dt),
                    _grid_horizon(self._max_time, time, dt),
                )
            if horizon < 1:
                span_blocked = True
                continue
            ticks = int(horizon)
            # Hand the span to the driver instead of applying it here:
            # `run()` applies it immediately (the historical scalar /
            # NumPy split lives in SpanPlan.apply), while a cross-run
            # batch driver coalesces plans from many engines into one
            # kernel invocation.  Either way the plan is applied before
            # the generator resumes, so the code below always sees
            # fully advanced job state.
            yield kernels.SpanPlan(
                rows=span_rows, ticks=ticks, dt=dt,
                allocation=allocation, spin_coeff=SPIN_WASTE_COEFF,
                max_spin_waste=MAX_SPIN_WASTE,
            )
            # Accumulate `time` tick by tick: span ticks must leave the
            # float trajectory bit-identical to fixed stepping, or grid
            # predicates (availability periods, arrival comparisons)
            # could flip on later ticks.
            last_tick = time
            for _ in range(ticks):
                last_tick = time
                time += dt
            stats.advance_span(last_tick, dt, ticks)

        job_times = {
            job_id: (state.finish_time if state.finish_time is not None
                     else time)
            for job_id, state in states.items()
        }
        target_time = (
            job_times[self._target_id]
            if self._target_id is not None and not timed_out
            else None
        )
        if self.state_digest is not None:
            self.state_digest.fold("result", {
                "timed_out": timed_out,
                "completed_runs": {
                    job_id: state.completed_runs
                    for job_id, state in states.items()
                },
                "selections": len(selections),
            })
        return SimulationResult(
            target_id=self._target_id,
            target_time=target_time,
            duration=time,
            job_times=job_times,
            workload_runs={
                job_id: state.completed_runs
                for job_id, state in states.items()
                if job_id != self._target_id
            },
            workload_work={
                job_id: state.work_done
                for job_id, state in states.items()
                if job_id != self._target_id
            },
            cpu_time={
                job_id: state.cpu_time
                for job_id, state in states.items()
            },
            timeline=timeline,
            selections=selections,
            timed_out=timed_out,
        )

    # -- helpers ----------------------------------------------------------

    def _target_done(self, states: Dict[str, "_JobState"]) -> bool:
        if self._target_id is None:
            return False
        return states[self._target_id].instance.finished

    def _consult(
        self,
        state: _JobState,
        stats: SystemStatsSampler,
        available: int,
        time: float,
        selections: List[Selection],
    ) -> None:
        region = state.region
        if region is None:
            # Still in serial glue; consult when the region actually starts.
            return
        env = stats.sample(perspective_job_id=state.spec.job_id)
        ctx = PolicyContext(
            time=time,
            loop_name=region.loop_name,
            code=state.code_features[region.loop_name],
            env=env,
            available_processors=available,
            max_threads=self._machine.topology.cores,
        )
        threads = state.spec.policy.select(ctx)
        if not 1 <= threads <= self._machine.topology.cores:
            raise ValueError(
                f"policy {state.spec.policy.name!r} selected illegal "
                f"thread count {threads}"
            )
        state.threads = threads
        state.consult_pending = False
        state.region_elapsed = 0.0
        self._dirty = True
        selections.append(Selection(
            time=time,
            job_id=state.spec.job_id,
            loop_name=region.loop_name,
            threads=threads,
        ))
        if self.state_digest is not None:
            # Decision stream only — no simulated times or float state:
            # the two stepping modes guarantee identical decisions in
            # identical order, while continuous quantities agree only up
            # to span accumulation order (see tests/runtime/
            # test_stepping.py), which would make the digest flaky.
            self.state_digest.fold("consult", {
                "job": state.spec.job_id,
                "loop": region.loop_name,
                "threads": threads,
            })

    def _demands(self, active: List["_JobState"]) -> List[JobDemand]:
        """Demands for the tick's active set (a pre-filtered list)."""
        demands = []
        for state in active:
            region = state.region
            # Jobs spend many consecutive ticks in the same phase with
            # the same thread count; reuse the (immutable) demand built
            # the first time that phase/thread pair was seen instead of
            # re-running affinity locality and demand validation.
            key = (
                (None, 1) if region is None
                else (region.loop_name, state.threads)
            )
            demand = state._demand_memo.get(key)
            if demand is None:
                if region is None:
                    demand = JobDemand(
                        job_id=state.spec.job_id,
                        threads=1,
                        memory_intensity=SERIAL_MEMORY_INTENSITY,
                        locality=1.0,
                    )
                else:
                    affinity = (
                        state.spec.affinity or self._machine.affinity
                    )
                    demand = JobDemand(
                        job_id=state.spec.job_id,
                        threads=state.threads,
                        memory_intensity=region.memory_intensity,
                        locality=affinity.locality(
                            state.threads, self._machine.topology
                        ),
                    )
                state._demand_memo[key] = demand
            demands.append(demand)
        return demands

    def _rate(
        self, state: _JobState, alloc, region: Optional[Region],
        share: float,
    ) -> float:
        """Progress rate (core-seconds of work per second) right now.

        ``share`` is the per-thread CPU fraction granted by this tick's
        allocation; it stays fixed within the tick even if the job's
        thread count changes at a mid-tick region entry (the scheduler
        only re-divides the machine on the next tick).
        """
        state_threads = state.threads
        if (
            alloc is state._rc_alloc
            and region is state._rc_region
            and state_threads == state._rc_threads
        ):
            return state._rc_value
        if (
            alloc is state._rc2_alloc
            and region is state._rc2_region
            and state_threads == state._rc2_threads
        ):
            return state._rc2_value
        rate = self._rate_uncached(state, alloc, region, share)
        # Two slots, newest first: a tick typically alternates between
        # the serial region and one parallel region under the same
        # allocation, so a single slot would thrash on every call.
        state._rc2_alloc = state._rc_alloc
        state._rc2_region = state._rc_region
        state._rc2_threads = state._rc_threads
        state._rc2_value = state._rc_value
        state._rc_alloc = alloc
        state._rc_region = region
        state._rc_threads = state_threads
        state._rc_value = rate
        return rate

    def _rate_uncached(
        self, state: _JobState, alloc, region: Optional[Region],
        share: float,
    ) -> float:
        if region is None:
            if share < 1.0:
                return share * alloc.switch_factor
            return alloc.switch_factor
        threads = state.threads
        granted = share * threads
        if granted < 1e-9:
            granted = 1e-9
        oversub = threads / granted - 1.0
        if oversub > 0.0:
            spin = (
                SPIN_WASTE_COEFF * region.sync_intensity
                * threads * oversub
            )
            spin_factor = _SPIN_BASE + MAX_SPIN_WASTE / (1.0 + spin)
        else:
            # No oversubscription: the formula collapses to exactly 1.0
            # ((1 - w) + w/(1 + 0) is exact in IEEE for w = 0.8).
            spin_factor = 1.0
        return (
            granted * alloc.switch_factor * alloc.memory_factor
            * region.scaling.efficiency(threads) * spin_factor
        )

    def _advance(
        self,
        state: _JobState,
        alloc,
        dt: float,
        time: float,
        stats: SystemStatsSampler,
        available: int,
        selections: List[Selection],
    ) -> None:
        # CPU time is charged at tick granularity: what the scheduler
        # granted is what the job occupied (spinning included).
        state.cpu_time += alloc.granted_cpus * dt
        share = alloc.thread_share
        instance = state.instance
        remaining_dt = dt
        while remaining_dt > 1e-12 and not instance.finished:
            region = state.region
            rate = self._rate(state, alloc, region, share)
            state._tick_rate = rate
            if rate <= 1e-12:
                break
            time_to_finish = instance.remaining / rate
            if time_to_finish > remaining_dt:
                # Phase outlives the tick: consume the rest of the tick.
                work = rate * remaining_dt
                # Inlined ProgramInstance.advance for its hot common
                # case; the full call handles the borderline where the
                # division-compare above and the subtraction disagree
                # about crossing the phase boundary.
                if instance.remaining - work > 1e-12:
                    instance.remaining -= work
                else:
                    instance.advance(work)
                    state.region = instance.current_region
                state.work_done += work
                if region is not None:
                    state.region_elapsed += remaining_dt
                return
            # Phase completes inside the tick.
            self._dirty = True
            work = instance.remaining
            state.work_done += work
            if region is not None:
                state.region_elapsed += time_to_finish
            instance.advance(work)
            state.region = instance.current_region
            remaining_dt -= time_to_finish
            now = time + (dt - remaining_dt)
            if instance.finished and state.finish_time is None:
                state.finish_time = now
            if region is not None:
                state.spec.policy.observe(RegionReport(
                    time=now,
                    loop_name=region.loop_name,
                    threads=state.threads,
                    elapsed=max(state.region_elapsed, 1e-9),
                    work=region.work,
                ))
                state.region_elapsed = 0.0
            new_region = state.region
            if new_region is not None and new_region is not region:
                # Entering a parallel region: consult the policy now.
                self._consult(state, stats, available, now, selections)

    def _timeline_point(
        self,
        time: float,
        available: int,
        states: Dict[str, "_JobState"],
        stats: SystemStatsSampler,
    ) -> TimelinePoint:
        target_threads = 0
        workload_threads = 0
        for state in states.values():
            if not state.active:
                continue
            threads = 1 if state.region is None else state.threads
            if state.spec.job_id == self._target_id:
                target_threads = threads
            else:
                workload_threads += threads
        env_norm = stats.sample_norm(self._target_id)
        return TimelinePoint(
            time=time,
            available=available,
            target_threads=target_threads,
            workload_threads=workload_threads,
            env_norm=env_norm,
        )
