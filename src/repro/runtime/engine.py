"""The discrete-time co-execution engine.

Runs one *target* program together with workload programs on a simulated
machine.  Matches the paper's experimental protocol (Section 6):

* target and workloads start together;
* workload programs restart when they finish, so contention persists
  until the target completes ("each program runs until the other
  finishes");
* every job consults its thread-selection policy at each parallel-region
  entry, observing the environment through the OS statistics sampler;
* completed regions are reported back to the policy (reactive policies
  feed on these observations).

The engine advances in fixed ticks of ``dt`` simulated seconds.  Policy
consultations see statistics from the *previous* tick — exactly the one-
sample lag a real runtime reading ``/proc`` would have.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..compiler.features import CodeFeatures, extract_code_features
from ..compiler.passes import analyze_module
from ..core.policies.base import PolicyContext, RegionReport, ThreadPolicy
from ..machine.affinity import AffinityPolicy
from ..machine.machine import SimMachine
from ..programs.model import ProgramInstance, ProgramModel, Region
from ..sched.scheduler import JobDemand, ProportionalShareScheduler
from ..sched.stats import SystemStatsSampler

#: Memory intensity attributed to serial glue (I/O, convergence checks).
SERIAL_MEMORY_INTENSITY = 0.05

#: Spin-waiting waste at synchronisation points.  OpenMP barriers busy-
#: wait by default: on an oversubscribed machine a thread that reaches a
#: barrier spins — consuming its CPU share — until the last descheduled
#: peer arrives.  The wasted fraction grows with the number of threads
#: (more peers to wait for) and with the oversubscription ratio (each
#: peer's turnaround is that much longer).  This is the physical reason
#: "spawning many threads slows down the program" for barrier-heavy
#: codes under load, while costing nothing on an idle machine (r = 1).
SPIN_WASTE_COEFF = 6.0

#: Upper bound on the fraction of granted CPU lost to spinning.  Real
#: runtimes eventually yield (passive waiting, sched_yield in the spin
#: loop), so waste saturates instead of starving the job completely.
MAX_SPIN_WASTE = 0.8


@dataclass
class JobSpec:
    """One program to run: model + policy + role.

    ``start_time`` delays the job's arrival: it consumes no resources
    and is invisible to the statistics until then (job churn — new work
    arriving mid-run — is how real shared systems behave, Figure 1).
    """

    program: ProgramModel
    policy: ThreadPolicy
    job_id: str = ""
    is_target: bool = False
    restart: bool = False
    affinity: Optional[AffinityPolicy] = None
    start_time: float = 0.0

    def __post_init__(self) -> None:
        if not self.job_id:
            self.job_id = self.program.name
        if self.start_time < 0:
            raise ValueError(
                f"job {self.job_id!r}: start_time cannot be negative"
            )


@dataclass(frozen=True)
class TimelinePoint:
    """Periodic sample of system state (feeds the Figure 2 plots)."""

    time: float
    available: int
    target_threads: int
    workload_threads: int
    env_norm: float


@dataclass(frozen=True)
class Selection:
    """One policy decision at a region entry."""

    time: float
    job_id: str
    loop_name: str
    threads: int


@dataclass
class SimulationResult:
    """Outcome of one co-execution run."""

    target_id: Optional[str]
    target_time: Optional[float]
    duration: float
    job_times: Dict[str, float]
    workload_runs: Dict[str, int]
    workload_work: Dict[str, float]
    #: CPU-seconds each job consumed (granted processor time).  Useful
    #: work retired is in ``workload_work`` / per-program totals; the
    #: ratio is the job's efficiency (spinning and contention burn CPU
    #: without retiring work).
    cpu_time: Dict[str, float] = field(default_factory=dict)
    timeline: List[TimelinePoint] = field(default_factory=list)
    selections: List[Selection] = field(default_factory=list)
    timed_out: bool = False

    @property
    def workload_throughput(self) -> float:
        """Aggregate workload core-seconds retired per simulated second."""
        if self.duration <= 0:
            return 0.0
        return sum(self.workload_work.values()) / self.duration

    def target_selections(self) -> List[Selection]:
        return [s for s in self.selections
                if s.job_id == self.target_id]

    def efficiency(self, job_id: str, work_done: float) -> float:
        """Useful work per CPU-second for one job (0 when unknown)."""
        cpu = self.cpu_time.get(job_id, 0.0)
        if cpu <= 0:
            return 0.0
        return work_done / cpu


#: Per-module memo of static analysis + code features, keyed by module
#: identity.  Static analysis depends only on the IR, which is immutable
#: in practice and shared across every scaled copy of a program
#: (``scale_program`` only replaces the iteration count), so a grid of
#: runs pays the analysis cost once per program instead of once per job
#: per run.  Entries are evicted when their module is garbage collected.
_CODE_FEATURE_MEMO: Dict[int, Dict[str, CodeFeatures]] = {}


def module_code_features(module) -> Dict[str, CodeFeatures]:
    """Code features of every parallel loop in ``module``, memoised."""
    key = id(module)
    cached = _CODE_FEATURE_MEMO.get(key)
    if cached is None:
        analysis = analyze_module(module)
        cached = {
            loop_name: extract_code_features(module, loop_name, analysis)
            for loop_name in analysis.loops
        }
        _CODE_FEATURE_MEMO[key] = cached
        weakref.finalize(module, _CODE_FEATURE_MEMO.pop, key, None)
    return cached


class _JobState:
    """Mutable per-job runtime bookkeeping."""

    def __init__(self, spec: JobSpec):
        self.spec = spec
        self.instance: ProgramInstance = spec.program.instantiate(
            job_id=spec.job_id
        )
        self.threads = 1
        self.consult_pending = False
        self.region_elapsed = 0.0
        self.completed_runs = 0
        self.run_counted = False
        self.work_done = 0.0
        self.cpu_time = 0.0
        self.finish_time: Optional[float] = None
        self.code_features: Dict[str, CodeFeatures] = (
            module_code_features(spec.program.module)
        )
        #: Reusable demand per (loop_name, threads) phase; demands are
        #: immutable and identical across revisits of the same phase.
        self._demand_memo: Dict[tuple, JobDemand] = {}

    started = False

    @property
    def active(self) -> bool:
        return self.started and not self.instance.finished

    @property
    def region(self) -> Optional[Region]:
        return self.instance.current_region


class CoExecutionEngine:
    """Runs a set of jobs on a machine until the target finishes."""

    def __init__(
        self,
        machine: SimMachine,
        jobs: Sequence[JobSpec],
        dt: float = 0.1,
        max_time: float = 3600.0,
        timeline_period: float = 1.0,
        tracer=None,
    ):
        if dt <= 0:
            raise ValueError("dt must be positive")
        if max_time <= 0:
            raise ValueError("max_time must be positive")
        ids = [spec.job_id for spec in jobs]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate job ids: {ids}")
        targets = [spec for spec in jobs if spec.is_target]
        if len(targets) > 1:
            raise ValueError("at most one target job is supported")
        self._machine = machine
        self._specs = list(jobs)
        self._dt = dt
        self._max_time = max_time
        self._timeline_period = timeline_period
        self._scheduler = ProportionalShareScheduler(machine.topology)
        self._target_id = targets[0].job_id if targets else None
        self._tracer = tracer

    def run(self) -> SimulationResult:
        """Execute the co-execution scenario and collect results."""
        dt = self._dt
        states = {spec.job_id: _JobState(spec) for spec in self._specs}
        for state in states.values():
            state.spec.policy.reset()
            state.started = state.spec.start_time <= 0.0
            state.consult_pending = state.started
        stats = SystemStatsSampler(self._machine.topology)
        stats.prime(float(len(states)))

        timeline: List[TimelinePoint] = []
        selections: List[Selection] = []
        time = 0.0
        next_timeline = 0.0
        timed_out = False
        # Tick allocations are pure functions of (demands, available);
        # co-execution spends long stretches in the same demand mix, so
        # memoising them skips most scheduler work.  Demands hash by
        # value, so reused demand objects and rebuilt equals both hit.
        alloc_memo: Dict[tuple, object] = {}

        def allocate(demands: List[JobDemand], available: int):
            key = (available, tuple(demands))
            allocation = alloc_memo.get(key)
            if allocation is None:
                allocation = self._scheduler.allocate(demands, available)
                alloc_memo[key] = allocation
            return allocation

        # Priming tick so the first consultation has statistics to read.
        available = self._machine.available(time)
        demands = self._demands(states)
        allocation = allocate(demands, available)
        stats.update(time, 0.0, demands, allocation)

        while True:
            available = self._machine.available(time)

            # 0. Job arrivals.
            for state in states.values():
                if not state.started and state.spec.start_time <= time:
                    state.started = True
                    state.consult_pending = True

            # 1. Policy consultations (using last tick's statistics).
            for state in states.values():
                if state.active and state.consult_pending:
                    self._consult(state, stats, available, time, selections)

            # 2. Schedule this tick.
            demands = self._demands(states)
            allocation = allocate(demands, available)
            stats.update(time, dt, demands, allocation)
            if self._tracer is not None:
                self._tracer.record(time, available, demands, allocation)

            # 3. Timeline sampling.
            if time >= next_timeline:
                timeline.append(self._timeline_point(
                    time, available, states, stats
                ))
                next_timeline += self._timeline_period

            # 4. Advance every job by one tick.  Phase boundaries inside
            # the tick are handled exactly (work conservation), with
            # policies consulted the moment a region is entered.  CPU
            # time is charged at tick granularity: what the scheduler
            # granted is what the job occupied (spinning included).
            for state in states.values():
                if not state.active:
                    continue
                state.cpu_time += (
                    allocation.allocations[state.spec.job_id].granted_cpus
                    * dt
                )
                self._advance(
                    state, allocation, dt, time, stats, available,
                    selections,
                )

            time += dt

            # 5. Handle completions (finish times were recorded exactly
            # by _advance; here we count the run and restart workloads).
            for state in states.values():
                if state.instance.finished and not state.run_counted:
                    state.run_counted = True
                    if state.finish_time is None:
                        state.finish_time = time
                    state.completed_runs += 1
                    if state.spec.restart and not self._target_done(states):
                        state.instance.restart()
                        state.finish_time = None
                        state.run_counted = False
                        state.consult_pending = True
                        state.threads = 1
                        state.region_elapsed = 0.0

            if self._target_done(states):
                break
            if self._target_id is None and all(
                s.started and s.instance.finished
                for s in states.values()
            ):
                break
            if time >= self._max_time:
                timed_out = True
                break

        job_times = {
            job_id: (state.finish_time if state.finish_time is not None
                     else time)
            for job_id, state in states.items()
        }
        target_time = (
            job_times[self._target_id]
            if self._target_id is not None and not timed_out
            else None
        )
        return SimulationResult(
            target_id=self._target_id,
            target_time=target_time,
            duration=time,
            job_times=job_times,
            workload_runs={
                job_id: state.completed_runs
                for job_id, state in states.items()
                if job_id != self._target_id
            },
            workload_work={
                job_id: state.work_done
                for job_id, state in states.items()
                if job_id != self._target_id
            },
            cpu_time={
                job_id: state.cpu_time
                for job_id, state in states.items()
            },
            timeline=timeline,
            selections=selections,
            timed_out=timed_out,
        )

    # -- helpers ----------------------------------------------------------

    def _target_done(self, states: Dict[str, "_JobState"]) -> bool:
        if self._target_id is None:
            return False
        return states[self._target_id].instance.finished

    def _consult(
        self,
        state: _JobState,
        stats: SystemStatsSampler,
        available: int,
        time: float,
        selections: List[Selection],
    ) -> None:
        region = state.region
        if region is None:
            # Still in serial glue; consult when the region actually starts.
            return
        env = stats.sample(perspective_job_id=state.spec.job_id)
        ctx = PolicyContext(
            time=time,
            loop_name=region.loop_name,
            code=state.code_features[region.loop_name],
            env=env,
            available_processors=available,
            max_threads=self._machine.topology.cores,
        )
        threads = state.spec.policy.select(ctx)
        if not 1 <= threads <= self._machine.topology.cores:
            raise ValueError(
                f"policy {state.spec.policy.name!r} selected illegal "
                f"thread count {threads}"
            )
        state.threads = threads
        state.consult_pending = False
        state.region_elapsed = 0.0
        selections.append(Selection(
            time=time,
            job_id=state.spec.job_id,
            loop_name=region.loop_name,
            threads=threads,
        ))

    def _demands(self, states: Dict[str, "_JobState"]) -> List[JobDemand]:
        demands = []
        for state in states.values():
            if not state.active:
                continue
            region = state.region
            # Jobs spend many consecutive ticks in the same phase with
            # the same thread count; reuse the (immutable) demand built
            # the first time that phase/thread pair was seen instead of
            # re-running affinity locality and demand validation.
            key = (
                (None, 1) if region is None
                else (region.loop_name, state.threads)
            )
            demand = state._demand_memo.get(key)
            if demand is None:
                if region is None:
                    demand = JobDemand(
                        job_id=state.spec.job_id,
                        threads=1,
                        memory_intensity=SERIAL_MEMORY_INTENSITY,
                        locality=1.0,
                    )
                else:
                    affinity = (
                        state.spec.affinity or self._machine.affinity
                    )
                    demand = JobDemand(
                        job_id=state.spec.job_id,
                        threads=state.threads,
                        memory_intensity=region.memory_intensity,
                        locality=affinity.locality(
                            state.threads, self._machine.topology
                        ),
                    )
                state._demand_memo[key] = demand
            demands.append(demand)
        return demands

    def _rate(
        self, state: _JobState, alloc, region: Optional[Region],
        share: float,
    ) -> float:
        """Progress rate (core-seconds of work per second) right now.

        ``share`` is the per-thread CPU fraction granted by this tick's
        allocation; it stays fixed within the tick even if the job's
        thread count changes at a mid-tick region entry (the scheduler
        only re-divides the machine on the next tick).
        """
        if region is None:
            return min(1.0, share) * alloc.switch_factor
        efficiency = region.scaling.efficiency(state.threads)
        granted = max(share * state.threads, 1e-9)
        oversub = max(0.0, state.threads / granted - 1.0)
        spin = (
            SPIN_WASTE_COEFF * region.sync_intensity
            * state.threads * oversub
        )
        spin_factor = (1.0 - MAX_SPIN_WASTE) + (
            MAX_SPIN_WASTE / (1.0 + spin)
        )
        return (
            granted * alloc.switch_factor * alloc.memory_factor
            * efficiency * spin_factor
        )

    def _advance(
        self,
        state: _JobState,
        allocation,
        dt: float,
        time: float,
        stats: SystemStatsSampler,
        available: int,
        selections: List[Selection],
    ) -> None:
        alloc = allocation.allocations[state.spec.job_id]
        share = alloc.granted_cpus / max(alloc.threads, 1)
        remaining_dt = dt
        while remaining_dt > 1e-12 and state.active:
            region = state.region
            rate = self._rate(state, alloc, region, share)
            if rate <= 1e-12:
                break
            time_to_finish = state.instance.remaining / rate
            if time_to_finish > remaining_dt:
                # Phase outlives the tick: consume the rest of the tick.
                work = rate * remaining_dt
                state.instance.advance(work)
                state.work_done += work
                if region is not None:
                    state.region_elapsed += remaining_dt
                return
            # Phase completes inside the tick.
            work = state.instance.remaining
            state.work_done += work
            if region is not None:
                state.region_elapsed += time_to_finish
            state.instance.advance(work)
            remaining_dt -= time_to_finish
            now = time + (dt - remaining_dt)
            if state.instance.finished and state.finish_time is None:
                state.finish_time = now
            if region is not None:
                state.spec.policy.observe(RegionReport(
                    time=now,
                    loop_name=region.loop_name,
                    threads=state.threads,
                    elapsed=max(state.region_elapsed, 1e-9),
                    work=region.work,
                ))
                state.region_elapsed = 0.0
            new_region = state.region
            if new_region is not None and new_region is not region:
                # Entering a parallel region: consult the policy now.
                self._consult(state, stats, available, now, selections)

    def _timeline_point(
        self,
        time: float,
        available: int,
        states: Dict[str, "_JobState"],
        stats: SystemStatsSampler,
    ) -> TimelinePoint:
        target_threads = 0
        workload_threads = 0
        for state in states.values():
            if not state.active:
                continue
            threads = 1 if state.region is None else state.threads
            if state.spec.job_id == self._target_id:
                target_threads = threads
            else:
                workload_threads += threads
        env_norm = stats.sample_norm(self._target_id)
        return TimelinePoint(
            time=time,
            available=available,
            target_threads=target_threads,
            workload_threads=workload_threads,
            env_norm=env_norm,
        )
