"""Structured engine tracing.

A :class:`TickTracer` attached to a :class:`~repro.runtime.engine.
CoExecutionEngine` records one row per scheduler tick: time, available
processors, total demand, bandwidth saturation, and per-job (threads,
granted CPUs).  Useful for debugging policies, for plotting timelines
outside Python, and for the paper-style "what happened at t₀" analyses.

The trace is plain data: export with :meth:`TickTracer.to_csv` or
consume :attr:`TickTracer.rows` directly.

The serving runtime adds :class:`TierTransition` / :class:`ServeTracer`
— the same idea at a different granularity: one event per degradation-
ladder move (mixture → best expert → default and back), so a soak run's
breaker behaviour can be replayed decision-by-decision afterwards.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union


@dataclass(frozen=True)
class TickRecord:
    """One scheduler tick's telemetry."""

    time: float
    available: int
    total_demand: int
    bandwidth_saturation: float
    #: job id -> threads demanded this tick.
    threads: Dict[str, int]
    #: job id -> CPUs granted this tick.
    granted: Dict[str, float]

    @property
    def oversubscription(self) -> float:
        return self.total_demand / self.available if self.available else 0.0


@dataclass(frozen=True)
class TierTransition:
    """One degradation-ladder move by the serving circuit breaker."""

    request_index: int
    from_tier: str
    to_tier: str
    #: Why the breaker moved: "trip" (failures exceeded the threshold),
    #: "probe" (a half-open probe of the upper tier succeeded enough to
    #: step back up), or "probe-failed" (the probe re-tripped).
    reason: str


@dataclass
class ServeTracer:
    """Collects tier transitions; attach via ``PolicyServer(tracer=)``."""

    transitions: List[TierTransition] = field(default_factory=list)

    def record(
        self, request_index: int, from_tier: str, to_tier: str,
        reason: str,
    ) -> None:
        self.transitions.append(TierTransition(
            request_index=request_index,
            from_tier=from_tier,
            to_tier=to_tier,
            reason=reason,
        ))

    def clear(self) -> None:
        self.transitions = []


@dataclass
class TickTracer:
    """Collects tick records; pass to ``CoExecutionEngine(tracer=...)``.

    ``period`` subsamples: one record every ``period`` simulated
    seconds (default: every tick — fine for short runs, heavy for long
    ones).
    """

    period: float = 0.0
    rows: List[TickRecord] = field(default_factory=list)
    _next_due: float = field(default=0.0, repr=False)

    def record(
        self,
        time: float,
        available: int,
        demands,
        allocation,
    ) -> None:
        """Called by the engine once per tick."""
        if self.period > 0.0 and time < self._next_due:
            return
        self._next_due = time + self.period
        self.rows.append(TickRecord(
            time=time,
            available=available,
            total_demand=allocation.runqueue.runnable,
            bandwidth_saturation=allocation.bandwidth_saturation,
            threads={d.job_id: d.threads for d in demands},
            granted={
                job_id: alloc.granted_cpus
                for job_id, alloc in allocation.allocations.items()
            },
        ))

    def clear(self) -> None:
        self.rows = []
        self._next_due = 0.0

    # -- consumption -------------------------------------------------------

    def job_ids(self) -> List[str]:
        ids: List[str] = []
        for row in self.rows:
            for job_id in row.threads:
                if job_id not in ids:
                    ids.append(job_id)
        return ids

    def series(self, job_id: str) -> List[tuple]:
        """(time, threads, granted) triples for one job."""
        return [
            (row.time, row.threads.get(job_id, 0),
             row.granted.get(job_id, 0.0))
            for row in self.rows
        ]

    def utilisation(self) -> float:
        """Mean fraction of available processors that had demand."""
        if not self.rows:
            return 0.0
        return sum(
            min(1.0, row.total_demand / row.available)
            for row in self.rows
        ) / len(self.rows)

    def to_csv(self, path: Union[str, Path]) -> Path:
        """Write the trace as CSV (one column pair per job)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        job_ids = self.job_ids()
        header = ["time", "available", "total_demand", "saturation"]
        for job_id in job_ids:
            header += [f"{job_id}.threads", f"{job_id}.granted"]
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(header)
            for row in self.rows:
                record = [
                    f"{row.time:.3f}", row.available,
                    row.total_demand,
                    f"{row.bandwidth_saturation:.4f}",
                ]
                for job_id in job_ids:
                    record.append(row.threads.get(job_id, 0))
                    record.append(
                        f"{row.granted.get(job_id, 0.0):.3f}"
                    )
                writer.writerow(record)
        return path
