"""Vectorized allocation/progress kernels for event-driven stepping.

The event-driven engine (:class:`repro.runtime.engine.CoExecutionEngine`
with ``stepping="event"``) advances whole *spans* of ticks at once
whenever the system is event-free.  Within such a span every job's
progress rate is constant, so the per-job math the fixed-tick engine
performs once per tick per job — granted shares, spin/efficiency
factors, work accrual — collapses to a handful of NumPy operations over
a structure-of-arrays snapshot of the active jobs.

The formulas here mirror ``CoExecutionEngine._rate`` operation for
operation (same constants, same evaluation order), so a span accrues the
same work the fixed-tick reference would, up to floating-point
accumulation order (one multiply per span instead of one per tick).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

#: Stalled-rate threshold, matching the fixed-tick advance loop's guard.
RATE_EPSILON = 1e-12

#: Safety fuzz, in ticks, subtracted before rounding a completion
#: horizon.  It must exceed the divergence between per-tick and per-span
#: work accumulation (~1 ulp per tick, so ~1e-8 ticks even for very
#: long spans) while costing far less than the whole tick of margin a
#: blanket ``-1`` would waste at every event.
HORIZON_FUZZ = 1e-6


@dataclass
class SpanState:
    """Structure-of-arrays snapshot of the active jobs for one span.

    One row per *active* job, in engine iteration order.  ``states``
    keeps the matching ``_JobState`` references so span results can be
    written back after the vectorized math.
    """

    states: List[object]
    threads: np.ndarray      # selected thread count (1 in serial glue)
    share: np.ndarray        # per-thread CPU fraction granted this tick
    granted_cpus: np.ndarray  # scheduler grant (CPU-seconds per second)
    switch_factor: np.ndarray
    memory_factor: np.ndarray
    efficiency: np.ndarray   # scaling-law efficiency at `threads`
    sync: np.ndarray         # region sync intensity (0 in serial glue)
    serial: np.ndarray       # bool: job is in serial glue
    remaining: np.ndarray    # work left in the current phase
    rates: np.ndarray        # progress rates (filled by span_rates)

    def __len__(self) -> int:
        return len(self.states)


def build_span_state(states, allocation, spin_coeff: float,
                     max_spin_waste: float) -> SpanState:
    """Gather the active jobs and this tick's allocation into arrays.

    ``states`` is the engine's active ``_JobState`` list; ``allocation``
    the :class:`~repro.sched.scheduler.TickAllocation` in force for the
    span (allocations only change at event ticks, by construction).
    """
    count = len(states)
    threads = np.empty(count, dtype=float)
    share = np.empty(count, dtype=float)
    granted_cpus = np.empty(count, dtype=float)
    switch_factor = np.empty(count, dtype=float)
    memory_factor = np.empty(count, dtype=float)
    efficiency = np.ones(count, dtype=float)
    sync = np.zeros(count, dtype=float)
    serial = np.zeros(count, dtype=bool)
    remaining = np.empty(count, dtype=float)

    for row, state in enumerate(states):
        alloc = allocation.allocations[state.spec.job_id]
        region = state.region
        threads[row] = float(state.threads)
        share[row] = alloc.granted_cpus / max(alloc.threads, 1)
        granted_cpus[row] = alloc.granted_cpus
        switch_factor[row] = alloc.switch_factor
        memory_factor[row] = alloc.memory_factor
        remaining[row] = state.instance.remaining
        if region is None:
            serial[row] = True
        else:
            efficiency[row] = region.scaling.efficiency(state.threads)
            sync[row] = region.sync_intensity

    span = SpanState(
        states=list(states),
        threads=threads,
        share=share,
        granted_cpus=granted_cpus,
        switch_factor=switch_factor,
        memory_factor=memory_factor,
        efficiency=efficiency,
        sync=sync,
        serial=serial,
        remaining=remaining,
        rates=np.empty(count, dtype=float),
    )
    span.rates = span_rates(span, spin_coeff, max_spin_waste)
    return span


def span_rates(span: SpanState, spin_coeff: float,
               max_spin_waste: float) -> np.ndarray:
    """Progress rates for every job at once.

    Vectorized transliteration of ``CoExecutionEngine._rate``: serial
    glue progresses at ``min(1, share) * switch_factor``; parallel
    regions at granted CPU discounted by context-switch, memory,
    scaling-efficiency and spin-waste factors.
    """
    if len(span) == 0:
        return np.empty(0, dtype=float)
    granted = np.maximum(span.share * span.threads, 1e-9)
    oversub = np.maximum(0.0, span.threads / granted - 1.0)
    spin = spin_coeff * span.sync * span.threads * oversub
    spin_factor = (1.0 - max_spin_waste) + (
        max_spin_waste / (1.0 + spin)
    )
    region_rates = (
        granted * span.switch_factor * span.memory_factor
        * span.efficiency * spin_factor
    )
    serial_rates = np.minimum(1.0, span.share) * span.switch_factor
    return np.where(span.serial, serial_rates, region_rates)


def completion_horizon(span: SpanState, dt: float) -> float:
    """Max whole ticks before any job could complete its phase.

    For a job progressing at rate ``r`` with ``w = m * r * dt`` work
    remaining, the fixed-tick engine completes the phase *during* tick
    index ``ceil(m) - 1`` (for integer ``m`` the final tick consumes
    exactly the remaining work), so up to ``ceil(m) - 1`` whole ticks
    are completion-free and the completion tick itself runs through the
    exact per-tick path.  :data:`HORIZON_FUZZ` is subtracted first so
    the accumulation-order difference between per-tick and per-span
    work totals can never push the completion across a tick boundary.
    Stalled jobs (``rate <= RATE_EPSILON``) never complete and impose
    no bound.
    """
    if len(span) == 0:
        return math.inf
    with np.errstate(divide="ignore"):
        ticks = np.where(
            span.rates > RATE_EPSILON,
            span.remaining / (span.rates * dt),
            np.inf,
        )
    horizon = float(np.min(ticks))
    if math.isinf(horizon):
        return math.inf
    return max(0.0, math.ceil(horizon - HORIZON_FUZZ) - 1.0)


def apply_span(span: SpanState, ticks: int, dt: float) -> None:
    """Write ``ticks`` ticks of progress back onto the job states.

    Work, CPU time and region residency all accrue linearly while rates
    hold, so the whole span is two vector multiplies.  The phase cannot
    complete inside the span (:func:`completion_horizon` guarantees a
    full tick of headroom), so ``remaining`` is decremented directly
    without boundary handling.
    """
    if ticks < 1 or len(span) == 0:
        return
    elapsed = ticks * dt
    work = span.rates * elapsed
    cpu = span.granted_cpus * elapsed
    for row, state in enumerate(span.states):
        state.work_done += work[row]
        state.cpu_time += cpu[row]
        state.instance.remaining -= work[row]
        if not span.serial[row]:
            state.region_elapsed += elapsed
