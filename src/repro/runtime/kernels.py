"""Vectorized allocation/progress kernels for event-driven stepping.

The event-driven engine (:class:`repro.runtime.engine.CoExecutionEngine`
with ``stepping="event"``) advances whole *spans* of ticks at once
whenever the system is event-free.  Within such a span every job's
progress rate is constant, so the per-job math the fixed-tick engine
performs once per tick per job — granted shares, spin/efficiency
factors, work accrual — collapses to a handful of NumPy operations over
a structure-of-arrays snapshot of the active jobs.

The formulas here mirror ``CoExecutionEngine._rate`` operation for
operation (same constants, same evaluation order), so a span accrues the
same work the fixed-tick reference would, up to floating-point
accumulation order (one multiply per span instead of one per tick).

Every kernel also accepts a **leading batch axis**: a
:class:`BatchSpanState` stacks the spans of N independent runs into
``(B, Jmax)`` padded arrays so a whole group of simulations advances
its event-free spans in a single set of NumPy operations
(:func:`apply_span_plans`).  Since every operation is elementwise, a
row's results are bit-identical whether it is processed alone or
inside a batch — the cross-run batch path inherits the per-run
equivalence guarantee for free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

#: Stalled-rate threshold, matching the fixed-tick advance loop's guard.
RATE_EPSILON = 1e-12

#: Safety fuzz, in ticks, subtracted before rounding a completion
#: horizon.  It must exceed the divergence between per-tick and per-span
#: work accumulation (~1 ulp per tick, so ~1e-8 ticks even for very
#: long spans) while costing far less than the whole tick of margin a
#: blanket ``-1`` would waste at every event.
HORIZON_FUZZ = 1e-6

#: Largest *total* active-row count for which a fast-forward span (or a
#: batch of spans) is applied with scalar Python instead of the NumPy
#: kernels: below this the array gather in :func:`build_span_state` /
#: :func:`build_batch_span_state` costs more than the vectorization
#: saves.  Both paths compute the same products in the same order, so
#: results are bit-identical.  For batches the threshold applies to the
#: aggregate row count across members, so small-N groups take the same
#: scalar arithmetic a solo engine would — never a third code path.
SCALAR_SPAN_MAX = 12


@dataclass
class SpanState:
    """Structure-of-arrays snapshot of the active jobs for one span.

    One row per *active* job, in engine iteration order.  ``states``
    keeps the matching ``_JobState`` references so span results can be
    written back after the vectorized math.
    """

    states: List[object]
    threads: np.ndarray      # selected thread count (1 in serial glue)
    share: np.ndarray        # per-thread CPU fraction granted this tick
    granted_cpus: np.ndarray  # scheduler grant (CPU-seconds per second)
    switch_factor: np.ndarray
    memory_factor: np.ndarray
    efficiency: np.ndarray   # scaling-law efficiency at `threads`
    sync: np.ndarray         # region sync intensity (0 in serial glue)
    serial: np.ndarray       # bool: job is in serial glue
    remaining: np.ndarray    # work left in the current phase
    rates: np.ndarray        # progress rates (filled by span_rates)

    def __len__(self) -> int:
        return len(self.states)


def build_span_state(states, allocation, spin_coeff: float,
                     max_spin_waste: float) -> SpanState:
    """Gather the active jobs and this tick's allocation into arrays.

    ``states`` is the engine's active ``_JobState`` list; ``allocation``
    the :class:`~repro.sched.scheduler.TickAllocation` in force for the
    span (allocations only change at event ticks, by construction).
    """
    count = len(states)
    threads = np.empty(count, dtype=float)
    share = np.empty(count, dtype=float)
    granted_cpus = np.empty(count, dtype=float)
    switch_factor = np.empty(count, dtype=float)
    memory_factor = np.empty(count, dtype=float)
    efficiency = np.ones(count, dtype=float)
    sync = np.zeros(count, dtype=float)
    serial = np.zeros(count, dtype=bool)
    remaining = np.empty(count, dtype=float)

    for row, state in enumerate(states):
        alloc = allocation.allocations[state.spec.job_id]
        region = state.region
        threads[row] = float(state.threads)
        share[row] = alloc.granted_cpus / max(alloc.threads, 1)
        granted_cpus[row] = alloc.granted_cpus
        switch_factor[row] = alloc.switch_factor
        memory_factor[row] = alloc.memory_factor
        remaining[row] = state.instance.remaining
        if region is None:
            serial[row] = True
        else:
            efficiency[row] = region.scaling.efficiency(state.threads)
            sync[row] = region.sync_intensity

    span = SpanState(
        states=list(states),
        threads=threads,
        share=share,
        granted_cpus=granted_cpus,
        switch_factor=switch_factor,
        memory_factor=memory_factor,
        efficiency=efficiency,
        sync=sync,
        serial=serial,
        remaining=remaining,
        rates=np.empty(count, dtype=float),
    )
    span.rates = span_rates(span, spin_coeff, max_spin_waste)
    return span


def span_rates(span: SpanState, spin_coeff: float,
               max_spin_waste: float) -> np.ndarray:
    """Progress rates for every job at once.

    Vectorized transliteration of ``CoExecutionEngine._rate``: serial
    glue progresses at ``min(1, share) * switch_factor``; parallel
    regions at granted CPU discounted by context-switch, memory,
    scaling-efficiency and spin-waste factors.

    Shape-polymorphic: accepts the 1-D arrays of a :class:`SpanState`
    or the ``(B, Jmax)`` arrays of a :class:`BatchSpanState`.  Padded
    batch rows (``threads == share == switch_factor == 0``) come out
    with rate exactly ``0.0``, below :data:`RATE_EPSILON`, so they are
    inert everywhere downstream.
    """
    if span.threads.size == 0:
        return np.empty_like(span.threads)
    granted = np.maximum(span.share * span.threads, 1e-9)
    oversub = np.maximum(0.0, span.threads / granted - 1.0)
    spin = spin_coeff * span.sync * span.threads * oversub
    spin_factor = (1.0 - max_spin_waste) + (
        max_spin_waste / (1.0 + spin)
    )
    region_rates = (
        granted * span.switch_factor * span.memory_factor
        * span.efficiency * spin_factor
    )
    serial_rates = np.minimum(1.0, span.share) * span.switch_factor
    return np.where(span.serial, serial_rates, region_rates)


def completion_horizon(span: SpanState, dt: float) -> float:
    """Max whole ticks before any job could complete its phase.

    For a job progressing at rate ``r`` with ``w = m * r * dt`` work
    remaining, the fixed-tick engine completes the phase *during* tick
    index ``ceil(m) - 1`` (for integer ``m`` the final tick consumes
    exactly the remaining work), so up to ``ceil(m) - 1`` whole ticks
    are completion-free and the completion tick itself runs through the
    exact per-tick path.  :data:`HORIZON_FUZZ` is subtracted first so
    the accumulation-order difference between per-tick and per-span
    work totals can never push the completion across a tick boundary.
    Stalled jobs (``rate <= RATE_EPSILON``) never complete and impose
    no bound.

    With a leading batch axis the bound is per member: a ``(B, Jmax)``
    :class:`BatchSpanState` yields a ``(B,)`` array of horizons, the
    padded rows contributing nothing (their rate is 0, i.e. stalled).
    """
    if span.threads.size == 0:
        if span.threads.ndim == 2:
            return np.full(span.threads.shape[0], math.inf)
        return math.inf
    with np.errstate(divide="ignore", invalid="ignore"):
        ticks = np.where(
            span.rates > RATE_EPSILON,
            span.remaining / (span.rates * dt),
            np.inf,
        )
    if span.rates.ndim == 2:
        per_member = np.min(ticks, axis=1)
        return np.where(
            np.isinf(per_member),
            np.inf,
            np.maximum(0.0, np.ceil(per_member - HORIZON_FUZZ) - 1.0),
        )
    horizon = float(np.min(ticks))
    if math.isinf(horizon):
        return math.inf
    return max(0.0, math.ceil(horizon - HORIZON_FUZZ) - 1.0)


def apply_span(span, ticks, dt: float) -> None:
    """Write ``ticks`` ticks of progress back onto the job states.

    Work, CPU time and region residency all accrue linearly while rates
    hold, so the whole span is two vector multiplies.  The phase cannot
    complete inside the span (:func:`completion_horizon` guarantees a
    full tick of headroom), so ``remaining`` is decremented directly
    without boundary handling.

    For a :class:`BatchSpanState`, ``ticks`` is one count per member
    and the two multiplies broadcast a ``(B, 1)`` elapsed column over
    the ``(B, Jmax)`` rate/grant planes — per element the identical
    IEEE product the solo path computes, so batching cannot perturb a
    single bit of simulated state.
    """
    if isinstance(span, BatchSpanState):
        elapsed = np.asarray(ticks, dtype=float) * dt
        work = span.rates * elapsed[:, None]
        cpu = span.granted_cpus * elapsed[:, None]
        for b, states in enumerate(span.members):
            member_elapsed = float(elapsed[b])
            serial = span.serial[b]
            for j, state in enumerate(states):
                state.work_done += work[b, j]
                state.cpu_time += cpu[b, j]
                state.instance.remaining -= work[b, j]
                if not serial[j]:
                    state.region_elapsed += member_elapsed
        return
    if ticks < 1 or len(span) == 0:
        return
    elapsed = ticks * dt
    work = span.rates * elapsed
    cpu = span.granted_cpus * elapsed
    for row, state in enumerate(span.states):
        state.work_done += work[row]
        state.cpu_time += cpu[row]
        state.instance.remaining -= work[row]
        if not span.serial[row]:
            state.region_elapsed += elapsed


@dataclass
class SpanPlan:
    """One engine's pending event-free fast-forward, not yet applied.

    The engine's stepping generator
    (:meth:`repro.runtime.engine.CoExecutionEngine.span_steps`) yields
    one of these at every span point instead of applying the progress
    itself, so a driver can choose *how* to apply it: solo
    (:meth:`apply`, the classic scalar/vector split) or coalesced with
    the plans of other engines into one batched kernel invocation
    (:func:`apply_span_plans`).  ``rows`` carries
    ``(state, instance, alloc, rate, serial)`` tuples — the span
    pre-pass working set — and ``allocation`` the
    :class:`~repro.sched.scheduler.TickAllocation` in force for the
    span.
    """

    rows: list
    ticks: int
    dt: float
    allocation: object
    spin_coeff: float
    max_spin_waste: float

    def __len__(self) -> int:
        return len(self.rows)

    def apply(self) -> None:
        """Solo application: the engine's historical scalar/NumPy split."""
        if len(self.rows) <= SCALAR_SPAN_MAX:
            self.apply_scalar()
        else:
            span = build_span_state(
                [row[0] for row in self.rows],
                self.allocation, self.spin_coeff, self.max_spin_waste,
            )
            apply_span(span, self.ticks, self.dt)

    def apply_scalar(self) -> None:
        """Few jobs: the NumPy gather costs more than it saves, and the
        pre-pass already holds every rate.  The math below is
        element-for-element the same as :func:`apply_span` (same
        products, same order), so both paths produce bit-identical
        state."""
        elapsed = self.ticks * self.dt
        for state, instance, alloc, rate, serial in self.rows:
            work = rate * elapsed
            state.work_done += work
            state.cpu_time += alloc.granted_cpus * elapsed
            instance.remaining -= work
            if not serial:
                state.region_elapsed += elapsed


@dataclass
class BatchSpanState:
    """Structure-of-arrays snapshot of N independent runs' spans.

    The leading axis is the batch member; the trailing axis is the
    member's active-job row, padded to the widest member.  Pad rows use
    ``threads = share = switch_factor = 0`` so :func:`span_rates`
    evaluates them to exactly ``0.0`` — stalled, hence invisible to
    :func:`completion_horizon` — and :func:`apply_span` never writes
    them back (``members`` only holds the real job states).
    """

    members: List[list]       # per-member _JobState lists (row order)
    ticks: np.ndarray         # (B,) span length per member
    dt: float
    threads: np.ndarray       # all (B, Jmax)
    share: np.ndarray
    granted_cpus: np.ndarray
    switch_factor: np.ndarray
    memory_factor: np.ndarray
    efficiency: np.ndarray
    sync: np.ndarray
    serial: np.ndarray
    remaining: np.ndarray
    rates: np.ndarray = field(default_factory=lambda: np.empty((0, 0)))

    def __len__(self) -> int:
        return len(self.members)


def build_batch_span_state(plans: Sequence[SpanPlan]) -> BatchSpanState:
    """Stack the spans of ``plans`` into one padded ``(B, Jmax)`` batch.

    The per-row gather is the same as :func:`build_span_state` — same
    fields, same expressions — just written into row ``(b, j)`` of the
    batch planes instead of row ``j`` of a 1-D snapshot.
    """
    if not plans:
        raise ValueError("cannot batch zero span plans")
    batch = len(plans)
    width = max(len(plan.rows) for plan in plans)
    shape = (batch, width)
    threads = np.zeros(shape, dtype=float)
    share = np.zeros(shape, dtype=float)
    granted_cpus = np.zeros(shape, dtype=float)
    switch_factor = np.zeros(shape, dtype=float)
    memory_factor = np.zeros(shape, dtype=float)
    efficiency = np.ones(shape, dtype=float)
    sync = np.zeros(shape, dtype=float)
    serial = np.zeros(shape, dtype=bool)
    remaining = np.zeros(shape, dtype=float)
    members: List[list] = []
    for b, plan in enumerate(plans):
        states = []
        for j, (state, instance, alloc, _rate, _serial) in enumerate(
            plan.rows
        ):
            region = state.region
            threads[b, j] = float(state.threads)
            share[b, j] = alloc.granted_cpus / max(alloc.threads, 1)
            granted_cpus[b, j] = alloc.granted_cpus
            switch_factor[b, j] = alloc.switch_factor
            memory_factor[b, j] = alloc.memory_factor
            remaining[b, j] = instance.remaining
            if region is None:
                serial[b, j] = True
            else:
                efficiency[b, j] = region.scaling.efficiency(
                    state.threads
                )
                sync[b, j] = region.sync_intensity
            states.append(state)
        members.append(states)
    state = BatchSpanState(
        members=members,
        ticks=np.array([plan.ticks for plan in plans], dtype=np.int64),
        dt=plans[0].dt,
        threads=threads,
        share=share,
        granted_cpus=granted_cpus,
        switch_factor=switch_factor,
        memory_factor=memory_factor,
        efficiency=efficiency,
        sync=sync,
        serial=serial,
        remaining=remaining,
    )
    state.rates = span_rates(
        state, plans[0].spin_coeff, plans[0].max_spin_waste
    )
    return state


def apply_span_plans(plans: Sequence[Optional[SpanPlan]]) -> None:
    """Advance a whole group of runs' spans in one kernel invocation.

    The cross-run analogue of :meth:`SpanPlan.apply`, including the
    batch-aware scalar fallback: when the *aggregate* row count is at
    most :data:`SCALAR_SPAN_MAX`, each plan takes the identical scalar
    arithmetic a solo engine would (so tiny groups cannot diverge from
    the solo path); above it, the plans are stacked into one
    :class:`BatchSpanState` and a single :func:`span_rates` +
    :func:`apply_span` pass advances every member at once.
    """
    live = [plan for plan in plans if plan is not None]
    if not live:
        return
    if sum(len(plan.rows) for plan in live) <= SCALAR_SPAN_MAX:
        for plan in live:
            plan.apply_scalar()
        return
    batch = build_batch_span_state(live)
    apply_span(batch, batch.ticks, batch.dt)
