"""Compose fault injectors onto any evaluation scenario.

A :class:`ChaosScenario` wraps a base
:class:`~repro.experiments.scenarios.Scenario` (or anything
scenario-shaped: ``name`` + ``availability(topology, seed=...)``) and
threads its availability schedule through a tuple of injectors.  It is
a frozen dataclass of frozen dataclasses, so its ``repr`` is
deterministic — which is exactly what
:meth:`repro.exec.request.RunRequest.fingerprint` hashes, meaning chaos
runs memoise and resume like any other run, and two grids with
different injector parameters can never collide in the cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..machine.availability import AvailabilitySchedule
from ..machine.topology import Topology, XEON_L7555


@dataclass(frozen=True)
class ChaosScenario:
    """A scenario with availability fault injectors layered on top.

    Injectors apply left to right: the first wraps the base schedule,
    the second wraps the first's output, and so on — so a collapse
    inside a flap and a flap inside a collapse are both expressible
    and distinct.
    """

    base: object
    injectors: Tuple[object, ...] = ()

    def __post_init__(self) -> None:
        for injector in self.injectors:
            if not callable(getattr(injector, "apply", None)):
                raise TypeError(
                    f"injector {injector!r} has no apply(schedule) method"
                )

    @property
    def name(self) -> str:
        return f"{self.base.name}+chaos"

    @property
    def workload_size(self) -> Optional[str]:
        return getattr(self.base, "workload_size", None)

    @property
    def hw_change(self) -> str:
        return getattr(self.base, "hw_change", "static")

    def availability(
        self, topology: Topology = XEON_L7555, seed: int = 0
    ) -> AvailabilitySchedule:
        schedule = self.base.availability(topology, seed=seed)
        for injector in self.injectors:
            schedule = injector.apply(schedule)
        return schedule
