"""Fleet-churn schedules: live resizes as chaos events.

The availability/workload/sensor injectors attack the *environment*
the mapper serves; churn attacks the *serving fleet itself* — shards
are added, removed and killed while the decision stream is live.  A
schedule is a deterministic list of :class:`ChurnEvent` entries
(request index → new shard count), parsed from the compact
``"IDX:SHARDS,IDX:SHARDS"`` form the CLI takes, and handed to the
soak harness's ``resize_at`` hook.  Like every other injector here it
is pure data: a churn run is bit-for-bit reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Union


@dataclass(frozen=True)
class ChurnEvent:
    """One scheduled fleet reshape: just before submitting request
    ``index``, resize the fleet to ``shards`` members."""

    #: Request index the resize precedes.
    index: int
    #: Target shard count after the resize.
    shards: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("churn index cannot be negative")
        if self.shards < 1:
            raise ValueError("churn must leave at least one shard")


def parse_churn_schedule(text: str) -> List[ChurnEvent]:
    """Parse ``"IDX:SHARDS,IDX:SHARDS,..."`` into sorted events.

    Whitespace around entries is ignored; an empty string yields an
    empty schedule.  Duplicate indices are rejected — two resizes
    cannot precede the same request.
    """
    events: List[ChurnEvent] = []
    seen: set = set()
    for entry in text.split(","):
        entry = entry.strip()
        if not entry:
            continue
        head, sep, tail = entry.partition(":")
        if not sep:
            raise ValueError(
                f"churn entry {entry!r} is not of the form IDX:SHARDS"
            )
        try:
            index, shards = int(head), int(tail)
        except ValueError:
            raise ValueError(
                f"churn entry {entry!r} is not of the form IDX:SHARDS"
            ) from None
        if index in seen:
            raise ValueError(
                f"churn schedules two resizes before request {index}"
            )
        seen.add(index)
        events.append(ChurnEvent(index=index, shards=shards))
    return sorted(events, key=lambda event: event.index)


def churn_resize_map(
    events: Iterable[ChurnEvent],
) -> Dict[int, int]:
    """Flatten a schedule into the soak harness's ``resize_at`` form."""
    return {event.index: event.shards for event in events}
