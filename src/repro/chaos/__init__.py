"""Chaos injection for the simulated environment.

The paper's claim is that a mixture-of-experts mapper survives
*hostile, changing environments*; this package makes the environments
genuinely hostile.  It composes deterministic fault injectors onto any
evaluation scenario:

* **availability faults** (:mod:`repro.chaos.availability`) — collapse
  (most processors gone for a window, building on
  :class:`~repro.machine.availability.FailureWindow`) and flapping
  (capacity oscillating on a duty cycle);
* **workload faults** (:mod:`repro.chaos.workload`) — burst storms of
  one-shot jobs arriving in waves instead of the steady co-runner mix;
* **sensor faults** (:mod:`repro.chaos.sensors`) — the environment
  *readings* go bad (NaN, stale, clipped, noisy) while the machine
  itself behaves, exercising the policy-hardening guarantees;
* **fleet churn** (:mod:`repro.chaos.churn`) — the serving fleet
  itself is reshaped mid-stream: scheduled live resizes (and shard
  kills) exercising the elastic-resharding migration path.

Everything is deterministic given its seed: a chaos run is bit-for-bit
reproducible, serial or parallel, and every availability injector
implements the ``next_change`` event-horizon protocol so event-driven
stepping stays exact.  See ``docs/robustness.md``.
"""

from .availability import (
    AvailabilityFlap,
    CollapseInjector,
    FlapInjector,
)
from .churn import ChurnEvent, churn_resize_map, parse_churn_schedule
from .scenario import ChaosScenario
from .sensors import (
    SENSOR_FAULT_MODES,
    SensorFaultPolicy,
    SensorFaultSpec,
    corrupt_sample,
    sensor_fault_factory,
)
from .workload import BurstStormInjector, storm_workload

__all__ = [
    "AvailabilityFlap",
    "BurstStormInjector",
    "ChaosScenario",
    "ChurnEvent",
    "CollapseInjector",
    "FlapInjector",
    "SENSOR_FAULT_MODES",
    "SensorFaultPolicy",
    "SensorFaultSpec",
    "churn_resize_map",
    "corrupt_sample",
    "parse_churn_schedule",
    "sensor_fault_factory",
    "storm_workload",
]
