"""Availability fault injectors: collapse and flapping.

Both injectors wrap an existing
:class:`~repro.machine.availability.AvailabilitySchedule` and implement
the full schedule protocol themselves — including ``next_change``, so
the event-driven engine's fast-forward horizons stay *exact* under
injected faults (returning a later-than-actual change would let the
engine coast through a fault edge; these never do).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..machine.availability import (
    AvailabilitySchedule,
    FailureWindow,
    next_availability_change,
)


@dataclass(frozen=True)
class AvailabilityFlap:
    """Capacity oscillating on a duty cycle: repeated partial outages.

    From ``start`` onward, each ``period`` opens with a degraded phase
    of length ``duty * period`` during which only
    ``floor(count * surviving_fraction)`` (>= 1) of the base schedule's
    processors survive; the rest of the period is healthy.  This is the
    flapping cousin of the one-shot
    :class:`~repro.machine.availability.FailureWindow` — a machine
    whose capacity keeps dropping out and coming back.
    """

    base: AvailabilitySchedule
    period: float
    surviving_fraction: float = 0.5
    start: float = 0.0
    duty: float = 0.5

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 < self.surviving_fraction <= 1.0:
            raise ValueError("surviving_fraction must be in (0, 1]")
        if self.start < 0:
            raise ValueError("start cannot be negative")
        if not 0.0 < self.duty < 1.0:
            raise ValueError("duty must be in (0, 1)")

    def _degraded(self, time: float) -> bool:
        if time < self.start:
            return False
        return (time - self.start) % self.period < self.duty * self.period

    def available(self, time: float) -> int:
        count = self.base.available(time)
        if self._degraded(time):
            return max(
                1, int(math.floor(count * self.surviving_fraction))
            )
        return count

    def next_change(self, time: float) -> float:
        """Next base change or flap edge, whichever comes first."""
        candidates = [next_availability_change(self.base, time)]
        candidates.append(self._next_edge(time))
        return min(candidates)

    def _next_edge(self, time: float) -> float:
        """The first flap edge (degrade or recover) strictly after
        ``time``."""
        if time < self.start:
            return self.start
        relative = time - self.start
        cycle = math.floor(relative / self.period)
        position = relative - cycle * self.period
        degrade_end = self.duty * self.period
        if position < degrade_end:
            return self.start + cycle * self.period + degrade_end
        return self.start + (cycle + 1) * self.period


@dataclass(frozen=True)
class CollapseInjector:
    """Inject a one-shot availability collapse.

    A harsher :class:`~repro.machine.availability.FailureWindow`: for
    ``[start, end)`` only ``surviving_fraction`` of the processors
    remain (default one in eight — a rack losing most of its boards,
    not the paper's gentle half-machine failure).
    """

    start: float
    end: float
    surviving_fraction: float = 0.125

    def __post_init__(self) -> None:
        # Reuse FailureWindow's validation semantics eagerly, so a bad
        # injector fails at construction, not mid-grid in a worker.
        if self.end <= self.start:
            raise ValueError("collapse window must have positive length")
        if not 0.0 < self.surviving_fraction <= 1.0:
            raise ValueError("surviving_fraction must be in (0, 1]")

    def apply(
        self, schedule: AvailabilitySchedule
    ) -> AvailabilitySchedule:
        return FailureWindow(
            base=schedule,
            start=self.start,
            end=self.end,
            surviving_fraction=self.surviving_fraction,
        )


@dataclass(frozen=True)
class FlapInjector:
    """Inject capacity flapping (see :class:`AvailabilityFlap`)."""

    period: float = 6.0
    surviving_fraction: float = 0.5
    start: float = 0.0
    duty: float = 0.5

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 < self.surviving_fraction <= 1.0:
            raise ValueError("surviving_fraction must be in (0, 1]")
        if self.start < 0:
            raise ValueError("start cannot be negative")
        if not 0.0 < self.duty < 1.0:
            raise ValueError("duty must be in (0, 1)")

    def apply(
        self, schedule: AvailabilitySchedule
    ) -> AvailabilitySchedule:
        return AvailabilityFlap(
            base=schedule,
            period=self.period,
            surviving_fraction=self.surviving_fraction,
            start=self.start,
            duty=self.duty,
        )
