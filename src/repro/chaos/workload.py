"""Workload burst storms: jobs arriving in waves.

The paper's protocol keeps a steady multiprogrammed mix alive for the
whole run (workload jobs restart until the target finishes).  A burst
storm is the hostile version: waves of one-shot jobs slam the machine
at intervals, between which it is nearly idle — the contention signal
the policy sees swings violently instead of holding steady.

Storms are expressed entirely through
:class:`~repro.exec.request.WorkloadSpec`'s ``start_times`` /
``restart`` fields, so they ride the normal request path: fingerprinted
(storm parameters change the cache key), deterministic, and exact under
event-driven stepping (the engine already treats job arrivals as
events).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..exec.request import PolicySpec, WorkloadSpec


def storm_workload(
    program_names: Sequence[str],
    policy: PolicySpec,
    bursts: int = 3,
    interval: float = 150.0,
    spread: float = 5.0,
    name: str = "burst-storm",
) -> WorkloadSpec:
    """A burst-storm workload: ``bursts`` waves of one-shot jobs.

    Wave ``b`` starts at ``b * interval``; within a wave the jobs
    arrive ``spread / len(program_names)`` seconds apart (a storm hits
    fast but not instantaneously).  Jobs do not restart — after a wave
    drains, the machine quiets down until the next one.
    """
    if bursts < 1:
        raise ValueError("bursts must be >= 1")
    if interval <= 0:
        raise ValueError("interval must be positive")
    if spread < 0:
        raise ValueError("spread cannot be negative")
    program_names = tuple(program_names)
    if not program_names:
        raise ValueError("a storm needs at least one program")
    names = []
    starts = []
    step = spread / len(program_names)
    for burst in range(bursts):
        wave_start = burst * interval
        for index, program in enumerate(program_names):
            names.append(program)
            starts.append(wave_start + index * step)
    return WorkloadSpec(
        program_names=tuple(names),
        policy=policy,
        name=name,
        start_times=tuple(starts),
        restart=False,
    )


@dataclass(frozen=True)
class BurstStormInjector:
    """Turn a steady workload spec into a burst storm of its programs.

    Unlike the availability injectors this applies to the *workload*
    half of a request (``apply_workload``); availability and workload
    injectors compose freely on the same run.
    """

    bursts: int = 3
    interval: float = 150.0
    spread: float = 5.0

    def __post_init__(self) -> None:
        if self.bursts < 1:
            raise ValueError("bursts must be >= 1")
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if self.spread < 0:
            raise ValueError("spread cannot be negative")

    def apply_workload(self, workload: WorkloadSpec) -> WorkloadSpec:
        return storm_workload(
            workload.program_names,
            workload.policy,
            bursts=self.bursts,
            interval=self.interval,
            spread=self.spread,
            name=(
                f"{workload.name}+storm" if workload.name else "burst-storm"
            ),
        )
