"""Environment-sensor fault injection.

The machine behaves; the *readings* lie.  A
:class:`SensorFaultPolicy` wraps any thread policy and corrupts the
:class:`~repro.sched.stats.EnvironmentSample` it is consulted with —
NaN readings, stale (previous-sample) readings, clipped (saturated)
readings, or multiplicative noise — before delegating to the wrapped
policy.  This exercises the hardening contract end to end: the policy
under test must keep emitting positive, finite thread counts (the
engine raises on anything else) and fall back to the documented safe
default when its inputs are garbage.

Faults are deterministic: each consultation draws from
``np.random.default_rng([seed, consult_index])``, so a fixed spec gives
a bit-identical fault sequence on every run — serial, parallel, or
replayed from cache.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.policies.base import PolicyContext, RegionReport, ThreadPolicy
from ..sched.stats import ENV_FEATURE_NAMES, EnvironmentSample

#: Supported fault modes.
SENSOR_FAULT_MODES: Tuple[str, ...] = ("nan", "stale", "clip", "noise")


@dataclass(frozen=True)
class SensorFaultSpec:
    """What goes wrong with the sensors, how often, and to which fields.

    ``rate`` is the per-consultation fault probability; ``fields``
    names the affected environment features (default: all seven).
    ``magnitude`` parameterises the mode: the saturation ceiling for
    ``clip``, the relative standard deviation for ``noise`` (unused by
    ``nan`` and ``stale``).
    """

    mode: str
    rate: float = 0.25
    seed: int = 0
    fields: Tuple[str, ...] = ENV_FEATURE_NAMES
    magnitude: float = 0.5

    def __post_init__(self) -> None:
        if self.mode not in SENSOR_FAULT_MODES:
            raise ValueError(
                f"unknown sensor fault mode {self.mode!r}; expected one "
                f"of {SENSOR_FAULT_MODES}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        unknown = set(self.fields) - set(ENV_FEATURE_NAMES)
        if unknown:
            raise ValueError(
                f"unknown environment fields {sorted(unknown)}; expected "
                f"a subset of {ENV_FEATURE_NAMES}"
            )
        if not self.fields:
            raise ValueError("fields cannot be empty")
        if self.magnitude < 0:
            raise ValueError("magnitude cannot be negative")


def corrupt_sample(
    spec: SensorFaultSpec,
    consult_index: int,
    env: EnvironmentSample,
    previous: Optional[EnvironmentSample],
) -> EnvironmentSample:
    """Corrupt one environment sample, statelessly.

    Pure function of (spec, consult_index, env, previous): fault ``k``
    of a stream is the same whether the stream is generated in one
    process, across a crash/restart boundary, or replayed from cache —
    which is what lets the serving soak harness corrupt its *request
    stream* (rather than wrap the served policy in a stateful
    :class:`SensorFaultPolicy` whose consult counter would reset on
    restart).  Returns ``env`` unchanged when the draw says "no fault"
    (or a ``stale`` fault has no previous sample to replay).
    """
    rng = np.random.default_rng([spec.seed, consult_index])
    if rng.random() >= spec.rate:
        return env
    if spec.mode == "nan":
        changes = {field: float("nan") for field in spec.fields}
    elif spec.mode == "stale":
        if previous is None:
            return env
        changes = {
            field: getattr(previous, field) for field in spec.fields
        }
    elif spec.mode == "clip":
        changes = {
            field: min(getattr(env, field), spec.magnitude)
            for field in spec.fields
        }
    else:  # noise
        changes = {}
        for field in spec.fields:
            value = getattr(env, field)
            scale = 1.0 + spec.magnitude * rng.standard_normal()
            changes[field] = max(0.0, value * scale)
    return dataclasses.replace(env, **changes)


class SensorFaultPolicy(ThreadPolicy):
    """Wraps a policy, corrupting its environment readings."""

    def __init__(self, inner: ThreadPolicy, spec: SensorFaultSpec):
        self.inner = inner
        self.spec = spec
        self.name = f"{inner.name}~{spec.mode}"
        self._consults = 0
        self._previous: Optional[EnvironmentSample] = None

    #: Delegated so the run summary's fallback accounting sees through
    #: the wrapper.
    @property
    def fallback_count(self) -> int:
        return int(getattr(self.inner, "fallback_count", 0) or 0)

    def reset(self) -> None:
        self.inner.reset()
        self._consults = 0
        self._previous = None

    def observe(self, report: RegionReport) -> None:
        self.inner.observe(report)

    def select(self, ctx: PolicyContext) -> int:
        env = ctx.env
        faulty = self._corrupt(env)
        # The *clean* sample is what a later "stale" fault replays: a
        # stuck sensor repeats the last real reading, not a prior lie.
        self._previous = env
        if faulty is not env:
            ctx = dataclasses.replace(ctx, env=faulty)
        return self.inner.select(ctx)

    # -- fault synthesis --------------------------------------------------

    def _corrupt(self, env: EnvironmentSample) -> EnvironmentSample:
        consult = self._consults
        self._consults += 1
        return corrupt_sample(self.spec, consult, env, self._previous)


def sensor_fault_factory(inner_factory, spec: SensorFaultSpec):
    """A picklable policy factory wrapping ``inner_factory``'s policies.

    Suitable for :meth:`repro.exec.request.PolicySpec.of`: cloudpickle
    serialises the closure by value, so the fault spec participates in
    the policy token and differently-faulted runs never share cache
    entries.
    """

    def make() -> SensorFaultPolicy:
        return SensorFaultPolicy(inner_factory(), spec)

    make.__name__ = f"sensor_fault[{spec.mode}]"
    return make
