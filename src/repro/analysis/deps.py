"""Cross-iteration dependence analysis for parallel loops.

For every top-level parallel loop the analysis

1. collects the **access sites** — every ``load``/``store`` operand,
   parsed through :mod:`~repro.analysis.refs` — across the loop's whole
   region (nested loops included);
2. resolves each site's base to a provenance class with the
   reaching-definitions facts of :mod:`~repro.analysis.dataflow`:
   a *named* shared array, *private* (per-iteration storage, the
   builder's ``%mem``/``%base`` handles), or *unknown* (a pointer of
   unresolvable provenance, which may alias any shared array);
3. tests every (write, access) pair for a cross-iteration dependence.
   Affine subscript pairs get the exact test: solve the linear
   Diophantine system ``a1*i1 + b1 = a2*i2 + b2`` with
   ``0 <= i1, i2 < N`` and ``i1 != i2``; a solution is a **CONFIRMED**
   dependence carrying a concrete witness iteration pair.  Opaque
   subscripts and unknown bases degrade to **POSSIBLE**;
4. folds the unprotected dependences into a
   :class:`ParallelSafety` verdict:

   * ``SAFE``    — no cross-iteration dependence survives;
   * ``ORDERED`` — only CONFIRMED dependences with a constant nonzero
     distance survive: wrong under an unordered parallel schedule but
     well-defined under ordered/sequential execution (the legality
     signal the schedule-kind policy dimension consumes);
   * ``RACY``    — a POSSIBLE dependence, or a CONFIRMED one whose
     distance varies per iteration (scalar accumulators, crossing
     subscripts): no schedule ordering makes the loop well-defined.

Protection mirrors the longstanding R001 semantics: a store is
protected when ``atomic``/``critical`` immediately precedes it, or
region-wide when the loop is declared ``reduction`` and contains a
``reduce`` combine step.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from math import gcd
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..compiler.ir import Function, Module, Opcode, ParallelLoop
from .dataflow import Facts, ReachingDefinitions
from .refs import MemRef, parse_ref

#: Opcodes whose presence immediately before a store protects it.
_PROTECTING = frozenset({Opcode.ATOMIC, Opcode.CRITICAL})


class Provenance(enum.Enum):
    """What a reference's base resolves to."""

    NAMED = "named"      # a specific shared array/scalar
    PRIVATE = "private"  # thread-private per-iteration storage
    UNKNOWN = "unknown"  # unresolvable pointer: may alias any shared base


class DependenceKind(enum.Enum):
    FLOW = "flow"      # write in an earlier iteration, read in a later
    ANTI = "anti"      # read in an earlier iteration, write in a later
    OUTPUT = "output"  # two writes to the same location


class Confidence(enum.Enum):
    CONFIRMED = "confirmed"  # the Diophantine test found a witness
    POSSIBLE = "possible"    # opaque subscript or unknown provenance


class ParallelSafety(enum.Enum):
    """Per-loop legality verdict, ordered ``SAFE < ORDERED < RACY``."""

    SAFE = "safe"
    ORDERED = "ordered"
    RACY = "racy"

    @property
    def rank(self) -> int:
        return _SAFETY_RANK[self]


_SAFETY_RANK = {
    ParallelSafety.SAFE: 0,
    ParallelSafety.ORDERED: 1,
    ParallelSafety.RACY: 2,
}


@dataclass(frozen=True)
class AccessSite:
    """One memory access inside a parallel region."""

    function: str
    loop_path: str   # dotted path of the owning loop ("outer.inner")
    index: int       # index into the owning loop's body list
    ref: MemRef
    is_write: bool
    protected: bool
    provenance: Provenance
    resolved_base: Optional[str]  # the array name for NAMED provenance

    def describe(self) -> str:
        verb = "store" if self.is_write else "load"
        return f"{verb} {self.ref.raw!r} at {self.loop_path}#{self.index}"


@dataclass(frozen=True)
class Dependence:
    """One cross-iteration dependence between two access sites.

    ``src`` executes in the earlier iteration of the witness pair (for
    POSSIBLE dependences, in textual order).  ``distance`` is the
    constant iteration distance when one exists, else ``None``;
    ``witness`` is a concrete ``(src_iteration, dst_iteration)`` pair
    for CONFIRMED dependences.
    """

    kind: DependenceKind
    confidence: Confidence
    base: str
    src: AccessSite
    dst: AccessSite
    distance: Optional[int]
    witness: Optional[Tuple[int, int]]

    @property
    def protected(self) -> bool:
        """Whether every write endpoint carries protection."""
        endpoints = [s for s in (self.src, self.dst) if s.is_write]
        return bool(endpoints) and all(s.protected for s in endpoints)

    def describe(self) -> str:
        text = (
            f"{self.confidence.value} {self.kind.value} dependence on "
            f"{self.base!r}: {self.src.describe()} vs "
            f"{self.dst.describe()}"
        )
        if self.witness is not None:
            text += (
                f" (witness iterations {self.witness[0]} and "
                f"{self.witness[1]})"
            )
        if self.distance is not None:
            text += f" [distance {self.distance}]"
        return text


@dataclass
class LoopDependenceReport:
    """All dependences and the safety verdict for one top-level loop."""

    function: str
    loop: str
    trip_count: int
    access_pattern: str
    sites: List[AccessSite]
    dependences: List[Dependence]

    @property
    def unprotected(self) -> List[Dependence]:
        return [d for d in self.dependences if not d.protected]

    @property
    def verdict(self) -> ParallelSafety:
        verdict = ParallelSafety.SAFE
        for dep in self.unprotected:
            if (dep.confidence is Confidence.POSSIBLE
                    or dep.distance is None):
                return ParallelSafety.RACY
            verdict = ParallelSafety.ORDERED
        return verdict


@dataclass
class ModuleDependenceReport:
    """Per-loop reports for a whole module, keyed by top-loop name."""

    module: str
    loops: Dict[str, LoopDependenceReport]

    @property
    def verdict(self) -> ParallelSafety:
        """The worst loop verdict (SAFE for a loop-free module)."""
        worst = ParallelSafety.SAFE
        for report in self.loops.values():
            if report.verdict.rank > worst.rank:
                worst = report.verdict
        return worst

    def confirmed_races(self) -> List[Dependence]:
        """Unprotected CONFIRMED dependences with no constant distance."""
        return [
            d
            for report in self.loops.values()
            for d in report.unprotected
            if d.confidence is Confidence.CONFIRMED and d.distance is None
        ]

    def possible_races(self) -> List[Dependence]:
        return [
            d
            for report in self.loops.values()
            for d in report.unprotected
            if d.confidence is Confidence.POSSIBLE
        ]


# ---------------------------------------------------------------------------
# The affine (Diophantine) dependence test
# ---------------------------------------------------------------------------

def _extended_gcd(a: int, b: int) -> Tuple[int, int, int]:
    """``(g, x, y)`` with ``a*x + b*y == g`` (``g`` may carry a sign)."""
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r != 0:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_x, x = x, old_x - quotient * x
        old_y, y = y, old_y - quotient * y
    return old_r, old_x, old_y


def _ceil_div(a: int, b: int) -> int:
    return -((-a) // b)


def _solve_range(position: int, step: int, upper: int
                 ) -> Optional[Tuple[int, int]]:
    """The integer ``t`` interval with ``0 <= position + step*t <= upper``."""
    if step == 0:
        return (0, 0) if 0 <= position <= upper else None
    if step > 0:
        low = _ceil_div(-position, step)
        high = (upper - position) // step
    else:
        low = _ceil_div(upper - position, step)
        high = position // (-step)
    if low > high:
        return None
    return low, high


def affine_collision(
    a1: int, b1: int, a2: int, b2: int, trip_count: int
) -> Optional[Tuple[int, int]]:
    """Smallest cross-iteration collision of two affine subscripts.

    Finds ``(i1, i2)`` with ``a1*i1 + b1 == a2*i2 + b2``,
    ``0 <= i1, i2 < trip_count`` and ``i1 != i2``, or ``None`` when the
    system has no solution.  Exact and O(1) — no iteration-space scan.
    """
    upper = trip_count - 1
    if upper < 1:
        return None  # fewer than two iterations: nothing can cross
    if a1 == 0 and a2 == 0:
        return (0, 1) if b1 == b2 else None
    if a1 == 0 or a2 == 0:
        # One side touches a fixed element; the other hits it at most
        # once.  Pick any distinct partner iteration for the fixed side.
        if a1 == 0:
            fixed_value, coeff, offset = b1, a2, b2
        else:
            fixed_value, coeff, offset = b2, a1, b1
        if (fixed_value - offset) % coeff != 0:
            return None
        hit = (fixed_value - offset) // coeff
        if not 0 <= hit <= upper:
            return None
        partner = 0 if hit != 0 else 1
        return (partner, hit) if a1 == 0 else (hit, partner)
    # General case: a1*i1 - a2*i2 = b2 - b1.
    c = b2 - b1
    if c % gcd(abs(a1), abs(a2)) != 0:
        return None
    g_signed, x0, y0 = _extended_gcd(a1, -a2)
    # a1*x0 + (-a2)*y0 == g_signed; scale the particular solution to c.
    scale = c // g_signed
    i1_part = x0 * scale
    i2_part = y0 * scale
    # General solution: i1 = i1_part + (a2/g)*t, i2 = i2_part + (a1/g)*t.
    g = abs(g_signed)
    step1 = a2 // g
    step2 = a1 // g
    range1 = _solve_range(i1_part, step1, upper)
    range2 = _solve_range(i2_part, step2, upper)
    if range1 is None or range2 is None:
        return None
    t_low = max(range1[0], range2[0])
    t_high = min(range1[1], range2[1])
    if t_low > t_high:
        return None
    # i1 - i2 is affine in t; at most one t makes them equal, so
    # checking two boundary candidates suffices.
    for t in range(t_low, min(t_low + 2, t_high + 1)):
        i1 = i1_part + step1 * t
        i2 = i2_part + step2 * t
        if i1 != i2:
            return i1, i2
    return None


# ---------------------------------------------------------------------------
# Site collection and base resolution
# ---------------------------------------------------------------------------

def _resolve_base(
    base: str, facts: Facts, depth: int = 0
) -> Tuple[Provenance, Optional[str]]:
    """Resolve a reference base to its provenance class.

    Non-``%`` names are shared arrays/scalars.  ``%``-names follow
    their reaching definitions: a ``gep`` chain ending at a shared name
    resolves to that array; no definition at all is the builder's
    private-handle convention (``%mem``, ``%base``); a load-defined
    pointer, a cyclic chain, or conflicting definitions are unknown
    provenance and may alias anything shared.
    """
    if not base.startswith("%"):
        return Provenance.NAMED, base
    if depth > 8:
        return Provenance.UNKNOWN, None
    definitions = facts.get(base)
    if not definitions:
        return Provenance.PRIVATE, None
    resolved: Set[Tuple[Provenance, Optional[str]]] = set()
    for definition in definitions:
        if definition.opcode is not Opcode.GEP or not definition.operands:
            return Provenance.UNKNOWN, None
        origin = parse_ref(definition.operands[0], trip_count=1).base
        provenance, name = _resolve_base(origin, facts, depth + 1)
        if provenance is Provenance.UNKNOWN:
            return Provenance.UNKNOWN, None
        resolved.add((provenance, name))
    if len(resolved) != 1:
        return Provenance.UNKNOWN, None
    return next(iter(resolved))


def _walk_region(top: ParallelLoop) -> Iterator[Tuple[ParallelLoop, str]]:
    """Yield ``(loop, dotted_path)`` across one top-level region."""

    def walk(loop: ParallelLoop, prefix: str
             ) -> Iterator[Tuple[ParallelLoop, str]]:
        path = f"{prefix}.{loop.name}" if prefix else loop.name
        yield loop, path
        for inner in loop.nested:
            yield from walk(inner, path)

    yield from walk(top, "")


def _collect_sites(
    function: Function, top: ParallelLoop
) -> List[AccessSite]:
    reaching = ReachingDefinitions(function, top)
    region_reduction = top.has_reduction and any(
        inst.opcode is Opcode.REDUCE for inst in top.instructions()
    )
    sites: List[AccessSite] = []
    for loop, path in _walk_region(top):
        block = reaching.block_number(path)
        for index, inst in enumerate(loop.body):
            if inst.opcode not in (Opcode.LOAD, Opcode.STORE):
                continue
            is_write = inst.opcode is Opcode.STORE
            protected = is_write and (
                region_reduction
                or (index > 0
                    and loop.body[index - 1].opcode in _PROTECTING)
            )
            facts = reaching.at(block, index)
            for operand in inst.operands:
                ref = parse_ref(operand, trip_count=top.trip_count)
                provenance, resolved = _resolve_base(ref.base, facts)
                if provenance is Provenance.PRIVATE:
                    continue
                sites.append(AccessSite(
                    function=function.name,
                    loop_path=path,
                    index=index,
                    ref=ref,
                    is_write=is_write,
                    protected=protected,
                    provenance=provenance,
                    resolved_base=resolved,
                ))
    return sites


# ---------------------------------------------------------------------------
# Pairwise dependence testing
# ---------------------------------------------------------------------------

def _may_alias(write: AccessSite, other: AccessSite) -> Optional[str]:
    """The display base name if the two sites may touch the same array."""
    if (write.provenance is Provenance.UNKNOWN
            or other.provenance is Provenance.UNKNOWN):
        named = write.resolved_base or other.resolved_base
        return named or write.ref.base
    if write.resolved_base == other.resolved_base:
        return write.resolved_base
    return None


def _classify(src: AccessSite, dst: AccessSite) -> DependenceKind:
    if src.is_write and dst.is_write:
        return DependenceKind.OUTPUT
    if src.is_write:
        return DependenceKind.FLOW
    return DependenceKind.ANTI


def _test_pair(
    write: AccessSite, other: AccessSite, trip_count: int
) -> Optional[Dependence]:
    base = _may_alias(write, other)
    if base is None:
        return None
    exact = (
        write.provenance is Provenance.NAMED
        and other.provenance is Provenance.NAMED
        and write.ref.is_affine
        and other.ref.is_affine
    )
    if not exact:
        src, dst = write, other
        if (other.loop_path, other.index) < (write.loop_path, write.index):
            src, dst = other, write
        return Dependence(
            kind=_classify(src, dst),
            confidence=Confidence.POSSIBLE,
            base=base,
            src=src,
            dst=dst,
            distance=None,
            witness=None,
        )
    sub_w = write.ref.subscript
    sub_o = other.ref.subscript
    assert sub_w is not None and sub_o is not None
    collision = affine_collision(
        sub_w.coeff, sub_w.offset, sub_o.coeff, sub_o.offset, trip_count
    )
    if collision is None:
        return None
    if collision[0] <= collision[1]:
        src, dst, witness = write, other, collision
    else:
        src, dst, witness = other, write, (collision[1], collision[0])
    # A constant distance needs matching nonzero strides; scalar
    # accumulators (both coefficients zero) collide at *every*
    # distance, which no ordering repairs.
    distance: Optional[int] = None
    if sub_w.coeff == sub_o.coeff and sub_w.coeff != 0:
        distance = witness[1] - witness[0]
    return Dependence(
        kind=_classify(src, dst),
        confidence=Confidence.CONFIRMED,
        base=base,
        src=src,
        dst=dst,
        distance=distance,
        witness=witness,
    )


def analyze_loop(
    function: Function, top: ParallelLoop
) -> LoopDependenceReport:
    """Dependence report for one top-level parallel loop."""
    sites = _collect_sites(function, top)
    dependences: List[Dependence] = []
    seen: Set[Tuple[object, ...]] = set()
    for write_pos, write in enumerate(sites):
        if not write.is_write:
            continue
        for other_pos, other in enumerate(sites):
            if other.is_write and other_pos < write_pos:
                continue  # write-write pairs are tested once
            dependence = _test_pair(write, other, top.trip_count)
            if dependence is None:
                continue
            key = (
                dependence.kind,
                dependence.confidence,
                dependence.base,
                (dependence.src.loop_path, dependence.src.index,
                 dependence.src.ref.raw, dependence.src.is_write),
                (dependence.dst.loop_path, dependence.dst.index,
                 dependence.dst.ref.raw, dependence.dst.is_write),
            )
            if key in seen:
                continue
            seen.add(key)
            dependences.append(dependence)
    return LoopDependenceReport(
        function=function.name,
        loop=top.name,
        trip_count=top.trip_count,
        access_pattern=top.access_pattern.value,
        sites=sites,
        dependences=dependences,
    )


def analyze_dependences(module: Module) -> ModuleDependenceReport:
    """Dependence reports for every top-level parallel loop in a module."""
    loops: Dict[str, LoopDependenceReport] = {}
    for function in module.functions:
        for top in function.loops:
            loops[top.name] = analyze_loop(function, top)
    return ModuleDependenceReport(module=module.name, loops=loops)


def safety_verdicts(module: Module) -> Dict[str, ParallelSafety]:
    """Per-top-loop :class:`ParallelSafety` verdicts, keyed by loop name."""
    report = analyze_dependences(module)
    return {name: loop.verdict for name, loop in report.loops.items()}


__all__ = [
    "AccessSite",
    "Confidence",
    "Dependence",
    "DependenceKind",
    "LoopDependenceReport",
    "ModuleDependenceReport",
    "ParallelSafety",
    "Provenance",
    "affine_collision",
    "analyze_dependences",
    "analyze_loop",
    "safety_verdicts",
]
