"""SARIF 2.1.0 rendering for lint and sanitizer findings.

One renderer serves both layers: callers adapt their finding type to
:class:`SarifResult` (``repro lint`` maps IR diagnostics, ``repro
sanitize`` maps source findings) and :func:`render_sarif` produces the
static-analysis interchange document GitHub code scanning ingests.

The output is deterministic: rules are sorted by id, results keep the
caller's (already location-sorted) order, and no timestamps or
machine-specific paths are embedded — the same findings always render
to the same bytes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Diagnostic severity -> SARIF result level.
LEVELS: Dict[str, str] = {
    "error": "error",
    "warning": "warning",
    "info": "note",
}


@dataclass(frozen=True)
class SarifResult:
    """One finding in renderer-neutral form."""

    rule_id: str
    level: str  # "error" | "warning" | "note"
    message: str
    uri: str
    line: int = 1
    column: int = 1

    def to_sarif(self) -> Dict[str, object]:
        return {
            "ruleId": self.rule_id,
            "level": self.level,
            "message": {"text": self.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": self.uri,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": max(1, self.line),
                        "startColumn": max(1, self.column),
                    },
                },
            }],
        }


def render_sarif(
    results: Sequence[SarifResult],
    tool_name: str,
    rules: Mapping[str, Mapping[str, str]],
    information_uri: str = "https://example.invalid/repro",
) -> Dict[str, object]:
    """A complete SARIF document as a JSON-ready dict.

    ``rules`` maps rule id to metadata (``name``, ``summary`` and an
    optional default ``level``); only rules that actually fired are
    emitted, keeping the document small and the diff stable.
    """
    fired = sorted({result.rule_id for result in results})
    rule_objects: List[Dict[str, object]] = []
    for rule_id in fired:
        metadata = rules.get(rule_id, {})
        rule_object: Dict[str, object] = {"id": rule_id}
        if "name" in metadata:
            rule_object["name"] = metadata["name"]
        if "summary" in metadata:
            rule_object["shortDescription"] = {
                "text": metadata["summary"]
            }
        if "level" in metadata:
            rule_object["defaultConfiguration"] = {
                "level": metadata["level"]
            }
        rule_objects.append(rule_object)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": tool_name,
                    "informationUri": information_uri,
                    "rules": rule_objects,
                },
            },
            "results": [result.to_sarif() for result in results],
        }],
    }


def render_sarif_json(
    results: Sequence[SarifResult],
    tool_name: str,
    rules: Mapping[str, Mapping[str, str]],
) -> str:
    """The SARIF document serialized with stable key order."""
    return json.dumps(
        render_sarif(results, tool_name, rules),
        indent=2,
        sort_keys=True,
    )


__all__ = [
    "LEVELS",
    "SARIF_SCHEMA",
    "SARIF_VERSION",
    "SarifResult",
    "render_sarif",
    "render_sarif_json",
]
