"""The determinism sanitizer: an AST self-lint over ``src/repro``.

Every simulation result in this repository is fingerprinted, cached,
journaled and replayed; a single nondeterminism source silently poisons
all four.  ``repro sanitize`` walks the package's own Python source and
flags the classic sources:

======  ====================  ==========================================
code    name                  what it flags
======  ====================  ==========================================
S001    unseeded-rng          RNG construction/use with no explicit
                              seed (``default_rng()``, the ``random``
                              or ``np.random`` module-level globals)
S002    wall-clock-read       ``time.time``/``datetime.now``-style
                              calls inside deterministic zones
                              (fingerprinted / cached / journaled
                              paths)
S003    non-atomic-write      write-mode ``open`` in a persistence
                              zone inside a function that never
                              ``os.replace``/``os.rename``'s a temp
                              file into place
S004    iteration-order-leak  ``json.dump(s)`` without
                              ``sort_keys=True`` in a deterministic
                              zone (dict order leaks into checksums)
S005    unstable-hash         builtin ``hash()`` in a deterministic
                              zone (salted per process since PEP 456)
======  ====================  ==========================================

S001 applies package-wide; the zone rules apply to the modules listed
in :data:`DETERMINISTIC_ZONES` / :data:`PERSISTENCE_ZONES`.  A finding
is suppressed by a ``# sanitize: ok`` pragma (optionally naming codes,
``# sanitize: ok S003``) on the flagged line or the line above — for
the places where the pattern is the *point* (quarantining a torn
journal tail is deliberately a plain write).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

#: Modules whose behaviour feeds fingerprints, caches, journals or
#: replay — wall-clock reads and iteration-order leaks are bugs here.
DETERMINISTIC_ZONES: Tuple[str, ...] = (
    "core/persistence.py",
    "exec/cache.py",
    "exec/request.py",
    "serve/journal.py",
    "runtime/engine.py",
    "analysis/determinism.py",
)

#: Modules that persist state across crashes — plain write-mode
#: ``open`` here risks torn files.
PERSISTENCE_ZONES: Tuple[str, ...] = (
    "core/persistence.py",
    "exec/cache.py",
    "serve/journal.py",
)

_PRAGMA_RE = re.compile(
    r"#\s*sanitize:\s*ok(?P<codes>(?:\s+S\d{3})*)", re.IGNORECASE
)

#: ``random`` module-level functions backed by the global (unseeded) RNG.
_GLOBAL_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "uniform", "gauss", "choice",
    "choices", "sample", "shuffle", "normalvariate", "betavariate",
})

_WALL_CLOCK = {
    ("time", "time"), ("time", "time_ns"),
    ("time", "monotonic"), ("time", "monotonic_ns"),
    ("time", "perf_counter"), ("time", "perf_counter_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
}


@dataclass(frozen=True)
class SanitizeRule:
    """Metadata for one sanitizer rule (for ``--help``, docs, SARIF)."""

    code: str
    name: str
    severity: str  # "error" | "warning"
    summary: str


_RULES: Dict[str, SanitizeRule] = {
    rule.code: rule
    for rule in (
        SanitizeRule(
            "S001", "unseeded-rng", "error",
            "random number generator constructed or used without an "
            "explicit seed",
        ),
        SanitizeRule(
            "S002", "wall-clock-read", "error",
            "wall-clock read inside a fingerprinted/cached/journaled "
            "path",
        ),
        SanitizeRule(
            "S003", "non-atomic-write", "error",
            "write-mode open in a persistence path without an atomic "
            "os.replace/os.rename publish",
        ),
        SanitizeRule(
            "S004", "iteration-order-leak", "warning",
            "json.dump(s) without sort_keys=True in a deterministic "
            "path: dict iteration order leaks into checksums",
        ),
        SanitizeRule(
            "S005", "unstable-hash", "warning",
            "builtin hash() in a deterministic path is salted per "
            "process",
        ),
    )
}


def all_sanitize_rules() -> List[SanitizeRule]:
    """Every sanitizer rule, ordered by code."""
    return [_RULES[code] for code in sorted(_RULES)]


@dataclass(frozen=True)
class SanitizeFinding:
    """One sanitizer finding at one source location."""

    code: str
    name: str
    severity: str
    message: str
    path: str  # posix-relative to the scanned root
    line: int
    column: int

    def __str__(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.column}: {self.code} "
            f"{self.severity}: {self.message}"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "name": self.name,
            "severity": self.severity,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "column": self.column,
        }

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.column, self.code)


def sanitize_findings_failed(
    findings: Sequence[SanitizeFinding], strict: bool = False
) -> bool:
    """Gate verdict: errors always fail, warnings fail under strict."""
    if strict:
        return bool(findings)
    return any(f.severity == "error" for f in findings)


def _in_zone(path: str, zones: Sequence[str]) -> bool:
    return any(path.endswith(zone) for zone in zones)


def _pragma_lines(source: str) -> Dict[int, Optional[Set[str]]]:
    """Pragma map: line -> suppressed codes (None = all codes)."""
    pragmas: Dict[int, Optional[Set[str]]] = {}
    for number, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        codes = {
            c.upper() for c in match.group("codes").split()
        }
        pragmas[number] = codes or None
    return pragmas


def _call_target(node: ast.Call) -> Tuple[Optional[str], str]:
    """``(qualifier, attribute)`` of a call: ``np.random.rand`` ->
    ``("random", "rand")``; a bare name -> ``(None, name)``."""
    func = node.func
    if isinstance(func, ast.Name):
        return None, func.id
    if isinstance(func, ast.Attribute):
        qualifier: Optional[str] = None
        if isinstance(func.value, ast.Name):
            qualifier = func.value.id
        elif isinstance(func.value, ast.Attribute):
            qualifier = func.value.attr
        return qualifier, func.attr
    return None, ""


def _has_arguments(node: ast.Call) -> bool:
    return bool(node.args) or bool(node.keywords)


def _keyword(node: ast.Call, name: str) -> Optional[ast.expr]:
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def _open_mode(node: ast.Call) -> Optional[str]:
    """The literal mode of an ``open``/``os.fdopen`` call, if constant."""
    mode: Optional[ast.expr] = None
    if len(node.args) >= 2:
        mode = node.args[1]
    keyword_mode = _keyword(node, "mode")
    if keyword_mode is not None:
        mode = keyword_mode
    if mode is None:
        return "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


class _Scan(ast.NodeVisitor):
    """Single-pass AST scan producing raw findings."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[SanitizeFinding] = []
        self.deterministic = _in_zone(path, DETERMINISTIC_ZONES)
        self.persistence = _in_zone(path, PERSISTENCE_ZONES)
        # Function scopes that publish atomically (os.replace/rename):
        # their write-mode opens are staging writes, not torn-file
        # risks.  Pre-computed before the visit.
        self._atomic_scopes: Set[ast.AST] = set()
        self._scopes: List[ast.AST] = []

    def _emit(self, code: str, message: str, node: ast.AST) -> None:
        rule = _RULES[code]
        self.findings.append(SanitizeFinding(
            code=code,
            name=rule.name,
            severity=rule.severity,
            message=message,
            path=self.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
        ))

    # -- scope bookkeeping -------------------------------------------------

    def scan(self, tree: ast.AST) -> List[SanitizeFinding]:
        for scope in ast.walk(tree):
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for node in ast.walk(scope):
                    if isinstance(node, ast.Call):
                        qualifier, attribute = _call_target(node)
                        if (qualifier == "os"
                                and attribute in ("replace", "rename")):
                            self._atomic_scopes.add(scope)
        self._visit_with_scopes(tree)
        return self.findings

    def _visit_with_scopes(self, node: ast.AST) -> None:
        is_scope = isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        if is_scope:
            self._scopes.append(node)
        for child in ast.iter_child_nodes(node):
            self._visit_with_scopes(child)
        if isinstance(node, ast.Call):
            self._check_call(node)
        if is_scope:
            self._scopes.pop()

    def _in_atomic_scope(self) -> bool:
        return any(scope in self._atomic_scopes for scope in self._scopes)

    # -- the rules ---------------------------------------------------------

    def _check_call(self, node: ast.Call) -> None:
        qualifier, attribute = _call_target(node)
        self._check_rng(node, qualifier, attribute)
        if self.deterministic:
            self._check_wall_clock(node, qualifier, attribute)
            self._check_json_order(node, qualifier, attribute)
            self._check_hash(node, qualifier, attribute)
        if self.persistence:
            self._check_atomic_write(node, qualifier, attribute)

    def _check_rng(self, node: ast.Call, qualifier: Optional[str],
                   attribute: str) -> None:
        if attribute == "default_rng" and not _has_arguments(node):
            self._emit(
                "S001",
                "default_rng() without a seed draws OS entropy; pass "
                "an explicit seed so runs replay bit-identically",
                node,
            )
            return
        if attribute == "Random" and qualifier == "random" \
                and not _has_arguments(node):
            self._emit(
                "S001",
                "random.Random() without a seed is nondeterministic; "
                "pass an explicit seed",
                node,
            )
            return
        if qualifier == "random" and attribute in _GLOBAL_RANDOM_FNS:
            self._emit(
                "S001",
                f"module-level random.{attribute}() uses the global "
                f"unseeded RNG; use a seeded Generator instance",
                node,
            )

    def _check_wall_clock(self, node: ast.Call,
                          qualifier: Optional[str],
                          attribute: str) -> None:
        if (qualifier, attribute) in _WALL_CLOCK:
            self._emit(
                "S002",
                f"{qualifier}.{attribute}() reads the wall clock in a "
                f"deterministic path; results must depend only on "
                f"inputs and seeds",
                node,
            )

    def _check_json_order(self, node: ast.Call,
                          qualifier: Optional[str],
                          attribute: str) -> None:
        if qualifier != "json" or attribute not in ("dump", "dumps"):
            return
        sort_keys = _keyword(node, "sort_keys")
        if (sort_keys is None
                or not (isinstance(sort_keys, ast.Constant)
                        and sort_keys.value is True)):
            self._emit(
                "S004",
                f"json.{attribute}() without sort_keys=True leaks dict "
                f"iteration order into a checksummed/journaled "
                f"document",
                node,
            )

    def _check_hash(self, node: ast.Call, qualifier: Optional[str],
                    attribute: str) -> None:
        if qualifier is None and attribute == "hash":
            self._emit(
                "S005",
                "builtin hash() is salted per process (PEP 456); use "
                "hashlib for stable digests",
                node,
            )

    def _check_atomic_write(self, node: ast.Call,
                            qualifier: Optional[str],
                            attribute: str) -> None:
        if not (qualifier is None and attribute == "open"):
            return
        mode = _open_mode(node)
        if mode is None or not any(flag in mode for flag in ("w", "x")):
            return  # reads, appends ("a") and unknown modes pass
        if self._in_atomic_scope():
            return
        self._emit(
            "S003",
            f"open(..., {mode!r}) in a persistence path without an "
            f"os.replace/os.rename publish in the same function; a "
            f"crash mid-write tears the file",
            node,
        )


def sanitize_source(
    source: str, path: str = "<memory>"
) -> List[SanitizeFinding]:
    """Findings for one Python source text (pragmas honoured)."""
    tree = ast.parse(source, filename=path)
    findings = _Scan(path).scan(tree)
    pragmas = _pragma_lines(source)
    kept: List[SanitizeFinding] = []
    for finding in findings:
        suppressed = False
        for line in (finding.line, finding.line - 1):
            if line not in pragmas:
                continue
            codes = pragmas[line]
            if codes is None or finding.code in codes:
                suppressed = True
                break
        if not suppressed:
            kept.append(finding)
    return kept


def sanitize_path(
    file_path: Union[str, Path], root: Union[str, Path, None] = None
) -> List[SanitizeFinding]:
    """Findings for one file, labelled relative to ``root``."""
    file_path = Path(file_path)
    label = file_path.as_posix()
    if root is not None:
        try:
            label = file_path.relative_to(Path(root)).as_posix()
        except ValueError:
            label = file_path.as_posix()
    with open(file_path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return sanitize_source(source, label)


def sanitize_tree(root: Union[str, Path]) -> List[SanitizeFinding]:
    """Findings for every ``*.py`` under ``root``, sorted and deduped."""
    root = Path(root)
    findings: List[SanitizeFinding] = []
    for file_path in sorted(root.rglob("*.py")):
        findings.extend(sanitize_path(file_path, root=root))
    unique = list(dict.fromkeys(findings))
    unique.sort(key=SanitizeFinding.sort_key)
    return unique


__all__ = [
    "DETERMINISTIC_ZONES",
    "PERSISTENCE_ZONES",
    "SanitizeFinding",
    "SanitizeRule",
    "all_sanitize_rules",
    "sanitize_findings_failed",
    "sanitize_path",
    "sanitize_source",
    "sanitize_tree",
]
