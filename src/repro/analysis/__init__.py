"""Whole-repo static analysis: IR dependence/race analysis + sanitizer.

Two layers, one package:

* **Layer 1 — dependence analysis over the compiler IR**
  (:mod:`~repro.analysis.refs`, :mod:`~repro.analysis.dataflow`,
  :mod:`~repro.analysis.deps`): a fixed-point dataflow framework
  (reaching definitions over loop back edges), may-alias resolution of
  ``%``-register array bases through ``gep`` def chains, and an exact
  affine (GCD/Diophantine) subscript test that classifies every
  cross-iteration dependence in every parallel loop as flow / anti /
  output, CONFIRMED (with a witness iteration pair) or POSSIBLE, and
  folds them into a per-loop :class:`~repro.analysis.deps.ParallelSafety`
  verdict (``safe`` / ``ordered`` / ``racy``).  The lint rules R001 /
  R011 / R012 in :mod:`repro.compiler.analysis.rules` and the opt-in
  ``Module.validate(check_races=True)`` hook are built on this layer.

* **Layer 2 — determinism sanitizer**
  (:mod:`~repro.analysis.sanitize`, :mod:`~repro.analysis.determinism`):
  an AST self-lint over ``src/repro`` (``repro sanitize``) that flags
  nondeterminism sources — unseeded RNG construction, wall-clock reads
  in fingerprinted paths, non-atomic writes in persistence paths,
  iteration-order leaks into fingerprints/journals, unstable ``hash()``
  — plus the ``REPRO_SANITIZE=1`` runtime hook that digests engine
  state at event boundaries and cross-checks two interleavings in the
  executor.

:mod:`~repro.analysis.sarif` renders either layer's findings as SARIF
2.1.0 for code-scanning upload.
"""

from __future__ import annotations

from .dataflow import DataflowBlock, Definition, ReachingDefinitions
from .deps import (
    AccessSite,
    Confidence,
    Dependence,
    DependenceKind,
    LoopDependenceReport,
    ModuleDependenceReport,
    ParallelSafety,
    analyze_dependences,
)
from .determinism import DeterminismError, StateDigest, sanitize_active
from .refs import AffineSubscript, MemRef, parse_ref, parse_subscript
from .sanitize import (
    SanitizeFinding,
    all_sanitize_rules,
    sanitize_findings_failed,
    sanitize_path,
    sanitize_source,
    sanitize_tree,
)
from .sarif import SarifResult, render_sarif

__all__ = [
    "AccessSite",
    "AffineSubscript",
    "Confidence",
    "DataflowBlock",
    "Definition",
    "Dependence",
    "DependenceKind",
    "DeterminismError",
    "LoopDependenceReport",
    "MemRef",
    "ModuleDependenceReport",
    "ParallelSafety",
    "ReachingDefinitions",
    "SanitizeFinding",
    "SarifResult",
    "StateDigest",
    "all_sanitize_rules",
    "analyze_dependences",
    "parse_ref",
    "parse_subscript",
    "render_sarif",
    "sanitize_active",
    "sanitize_findings_failed",
    "sanitize_path",
    "sanitize_source",
    "sanitize_tree",
]
