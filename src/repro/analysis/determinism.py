"""Runtime determinism hooks (the ``REPRO_SANITIZE=1`` mode).

Static analysis (:mod:`~repro.analysis.sanitize`) catches the
*sources* of nondeterminism; this module catches the *symptoms* the
static layer cannot see.  When the environment variable
``REPRO_SANITIZE`` is ``1``:

* the co-execution engine folds a :class:`StateDigest` over its state
  at every event boundary (policy consults and phase completions —
  exactly the points the event-driven stepping guarantees bit-identical
  to fixed stepping), exposing ``CoExecutionEngine.state_digest``;
* :func:`~repro.exec.request.execute_request` executes every request
  **twice**, once per stepping mode, and raises
  :class:`DeterminismError` unless both interleavings produce the same
  result fingerprint and event digest.

The digest hashes a canonical JSON encoding (sorted keys, stable float
repr), so any container-iteration-order leak in the folded state shows
up as a digest mismatch between runs.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any

#: Environment flag that arms the runtime determinism checks.
ENV_FLAG = "REPRO_SANITIZE"


def sanitize_active() -> bool:
    """Whether the runtime determinism checks are armed."""
    return os.environ.get(ENV_FLAG, "") == "1"


class DeterminismError(RuntimeError):
    """Two interleavings (or two replays) of one request disagreed."""


def _stable(value: Any) -> Any:
    """JSON fallback for non-JSON values (numpy scalars, enums, ...)."""
    for attribute in ("item", "value", "name"):
        candidate = getattr(value, attribute, None)
        if candidate is not None and not callable(candidate):
            return candidate
        if callable(candidate) and attribute == "item":
            return candidate()
    return repr(value)


class StateDigest:
    """A rolling SHA-256 over labelled state observations.

    ``fold`` canonicalises the payload (sorted keys, ``repr`` fallback
    for exotic types) before hashing, so two digests agree iff the two
    runs observed the same state in the same order.
    """

    def __init__(self) -> None:
        self._digest = hashlib.sha256()
        self.events = 0

    def fold(self, label: str, payload: Any) -> None:
        record = json.dumps(
            [label, payload], sort_keys=True, default=_stable,
        )
        self._digest.update(record.encode("utf-8"))
        self.events += 1

    def hexdigest(self) -> str:
        return self._digest.hexdigest()


__all__ = [
    "DeterminismError",
    "ENV_FLAG",
    "StateDigest",
    "sanitize_active",
]
