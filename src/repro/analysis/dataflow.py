"""A small fixed-point dataflow framework over the loop-oriented IR.

The IR has no explicit CFG — a function is a serial preamble plus
parallel loop regions, and a parallel loop iterates its (flattened)
region.  For dataflow purposes that *is* a CFG::

    entry -> serial -> region -> exit
                         ^  |
                         +--+        (loop back edge)

:func:`solve_forward` runs a classic worklist iteration over such a
block graph until the facts stop changing; :class:`ReachingDefinitions`
is the instance the dependence analysis needs — which definition(s) of
each ``%``-register can reach each instruction, *including* definitions
flowing around the loop back edge from a previous iteration.  That is
what lets the alias layer resolve ``%p = gep A; ...; store %p[i]`` to a
store into ``A`` even when the ``gep`` textually follows the store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Tuple

from ..compiler.ir import Function, Instruction, Opcode, ParallelLoop


@dataclass(frozen=True)
class Definition:
    """One definition site of a ``%``-register."""

    name: str
    block: int
    index: int
    opcode: Opcode
    operands: Tuple[str, ...]


#: A dataflow fact: per register, the set of definitions that may reach.
Facts = Dict[str, FrozenSet[Definition]]


@dataclass
class DataflowBlock:
    """One straight-line block of the derived CFG."""

    label: str
    instructions: Sequence[Instruction]
    successors: List[int] = field(default_factory=list)


def function_blocks(
    function: Function, top: ParallelLoop
) -> List[DataflowBlock]:
    """Blocks for ``function``'s serial code plus one top-level region.

    Block 0 is the serial preamble; blocks 1..k are the region's loops
    in nesting order (outer body first).  The region's last block loops
    back to its first — the parallel loop's back edge.
    """
    blocks: List[DataflowBlock] = [
        DataflowBlock(label="<serial>", instructions=function.serial)
    ]

    def add_loop(loop: ParallelLoop, prefix: str) -> None:
        path = f"{prefix}.{loop.name}" if prefix else loop.name
        blocks.append(DataflowBlock(label=path, instructions=loop.body))
        for inner in loop.nested:
            add_loop(inner, path)

    add_loop(top, "")
    for number in range(len(blocks) - 1):
        blocks[number].successors.append(number + 1)
    if len(blocks) > 1:
        # Back edge: the region re-enters its first block each iteration.
        blocks[-1].successors.append(1)
    return blocks


def _transfer(facts: Facts, block: int,
              instructions: Sequence[Instruction]) -> Facts:
    out: Facts = dict(facts)
    for index, inst in enumerate(instructions):
        if inst.result is not None:
            out[inst.result] = frozenset({Definition(
                name=inst.result,
                block=block,
                index=index,
                opcode=inst.opcode,
                operands=inst.operands,
            )})
    return out


def _join(left: Facts, right: Facts) -> Facts:
    merged: Facts = dict(left)
    for name, defs in right.items():
        merged[name] = merged.get(name, frozenset()) | defs
    return merged


def solve_forward(blocks: Sequence[DataflowBlock]) -> List[Facts]:
    """Worklist iteration to a fixed point; returns entry facts per block."""
    entry: List[Facts] = [{} for _ in blocks]
    exit_facts: List[Facts] = [{} for _ in blocks]
    worklist: List[int] = list(range(len(blocks)))
    while worklist:
        number = worklist.pop(0)
        out = _transfer(entry[number], number, blocks[number].instructions)
        if out == exit_facts[number] and number != 0:
            continue
        exit_facts[number] = out
        for successor in blocks[number].successors:
            joined = _join(entry[successor], out)
            if joined != entry[successor]:
                entry[successor] = joined
                if successor not in worklist:
                    worklist.append(successor)
    return entry


class ReachingDefinitions:
    """Reaching definitions for one function + one top-level region.

    ``at(block, index)`` gives the definitions reaching the instruction
    *before* it executes — the facts the alias layer queries to resolve
    a ``%``-register base to its array provenance.
    """

    def __init__(self, function: Function, top: ParallelLoop):
        self.blocks = function_blocks(function, top)
        self._entry = solve_forward(self.blocks)

    def at(self, block: int, index: int) -> Facts:
        facts: Facts = dict(self._entry[block])
        instructions = self.blocks[block].instructions
        for position in range(min(index, len(instructions))):
            inst = instructions[position]
            if inst.result is not None:
                facts[inst.result] = frozenset({Definition(
                    name=inst.result,
                    block=block,
                    index=position,
                    opcode=inst.opcode,
                    operands=inst.operands,
                )})
        return facts

    def block_number(self, label: str) -> int:
        for number, block in enumerate(self.blocks):
            if block.label == label:
                return number
        raise KeyError(f"no dataflow block labelled {label!r}")
