"""Memory-reference grammar for the IR dependence analysis.

The IR carries opaque operand strings; the dependence analysis gives
the memory ones structure.  An operand of a ``load``/``store`` is a
**memory reference** with the grammar::

    ref       := base | base "[" subscript "]"
    base      := any operand text without brackets ("A", "sum", "%p")
    subscript := affine | opaque

A bare base is a **scalar** reference: the same memory location in
every iteration of a parallel loop (the classic ``sum`` accumulator).
A subscripted base indexes into an array; when the subscript is an
**affine** expression of the canonical induction variable ``i`` (with
``n`` standing for the loop's trip count) the analysis can decide
exactly which iteration pairs touch the same element.  Anything else
(``out[idx[i]]``, inner-loop variables) is **opaque** — the analysis
falls back to may-alias (POSSIBLE) treatment.

Affine subscripts are terms joined by ``+``/``-``; each term is an
integer constant, ``i``, ``n``, or a ``c*i`` / ``c*n`` product::

    A[i]      A[2*i+1]      A[n-1-i]      hist[0]

Base-name semantics follow the operand convention documented in
:mod:`repro.compiler.analysis.rules`: names starting with ``%`` are
thread-private *unless* a reaching definition gives them shared
provenance (``%p = gep A`` makes ``%p`` an alias of ``A``); any other
name is a shared location, and distinct shared names denote distinct
(non-aliasing) allocations.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

#: ``base[subscript]`` — the base holds no brackets, the subscript may
#: (``in0[idx[i]]`` parses as base ``in0``, subscript ``idx[i]``).
_REF_RE = re.compile(r"^(?P<base>[^\[\]]+)\[(?P<subscript>.+)\]$")

#: One signed term of an affine expression.
_TERM_RE = re.compile(r"[+-]?[^+-]+")

#: ``c*i`` / ``i*c`` / ``c*n`` / ``n*c`` products.
_PRODUCT_RE = re.compile(
    r"^(?:(?P<c1>\d+)\*(?P<v1>[in])|(?P<v2>[in])\*(?P<c2>\d+))$"
)


@dataclass(frozen=True)
class AffineSubscript:
    """``coeff * i + offset`` with ``n`` already substituted.

    A scalar reference is the degenerate ``0 * i + 0`` — the same
    address in every iteration.
    """

    coeff: int
    offset: int

    def at(self, iteration: int) -> int:
        """The element index touched by ``iteration``."""
        return self.coeff * iteration + self.offset

    def __str__(self) -> str:
        if self.coeff == 0:
            return str(self.offset)
        head = "i" if self.coeff == 1 else (
            "-i" if self.coeff == -1 else f"{self.coeff}*i"
        )
        if self.offset == 0:
            return head
        return f"{head}{self.offset:+d}"


@dataclass(frozen=True)
class MemRef:
    """One structured memory reference.

    ``subscript`` is ``None`` for an **opaque** (non-affine) subscript;
    a scalar reference has ``subscript_text is None`` and an affine
    ``0*i+0`` subscript.
    """

    raw: str
    base: str
    subscript_text: Optional[str]
    subscript: Optional[AffineSubscript]

    @property
    def is_scalar(self) -> bool:
        return self.subscript_text is None

    @property
    def is_affine(self) -> bool:
        return self.subscript is not None

    def __str__(self) -> str:
        return self.raw


def parse_subscript(text: str, trip_count: int) -> Optional[AffineSubscript]:
    """Parse an affine subscript, substituting ``trip_count`` for ``n``.

    Returns ``None`` when the text falls outside the affine grammar
    (indirect indices, unknown symbols, nested brackets).
    """
    compact = text.replace(" ", "")
    if not compact:
        return None
    coeff = 0
    offset = 0
    consumed = 0
    for match in _TERM_RE.finditer(compact):
        term = match.group(0)
        consumed += len(term)
        sign = 1
        if term[0] in "+-":
            sign = -1 if term[0] == "-" else 1
            term = term[1:]
        if not term:
            return None
        if term == "i":
            coeff += sign
        elif term == "n":
            offset += sign * trip_count
        elif term.isdigit():
            offset += sign * int(term)
        else:
            product = _PRODUCT_RE.match(term)
            if product is None:
                return None
            constant = int(product.group("c1") or product.group("c2"))
            variable = product.group("v1") or product.group("v2")
            if variable == "i":
                coeff += sign * constant
            else:
                offset += sign * constant * trip_count
    if consumed != len(compact):
        return None
    return AffineSubscript(coeff=coeff, offset=offset)


def parse_ref(operand: str, trip_count: int) -> MemRef:
    """Parse one ``load``/``store`` operand into a :class:`MemRef`."""
    match = _REF_RE.match(operand)
    if match is None:
        return MemRef(
            raw=operand,
            base=operand,
            subscript_text=None,
            subscript=AffineSubscript(coeff=0, offset=0),
        )
    subscript_text = match.group("subscript")
    return MemRef(
        raw=operand,
        base=match.group("base"),
        subscript_text=subscript_text,
        subscript=parse_subscript(subscript_text, trip_count),
    )
