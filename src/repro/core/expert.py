"""The expert: a (thread predictor, environment predictor) pair.

Section 4.1: "Each expert has two models associated with it: (a) thread
predictor 'w' and (b) an environment predictor 'm'."  Both are linear
models over the same 10-d feature vector:

* ``n = w·f`` — the thread count predicted to maximise speedup;
* ``‖ê_{t+1}‖ = m·f`` — the predicted norm of the *next* environment.

"As m and w are built from the same training data, they are correlated
... if m is accurate, so is w" — which is why the selector can use m's
accuracy as a proxy for w's quality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from .features import FEATURE_NAMES, NUM_FEATURES, FeatureSample
from .regression import LinearModel, fit_least_squares


@dataclass(frozen=True)
class Expert:
    """One offline-trained thread-selection expert."""

    name: str
    thread_model: LinearModel  # 'w' in the paper
    env_model: LinearModel  # 'm' in the paper
    #: Human-readable provenance: which training slice built this expert
    #: ("scalable @ twelve-core", ...).
    provenance: str = ""
    #: Per-feature envelope of the training data.  Predictions clip the
    #: input to this region first: a linear model is only trusted where
    #: it saw data, so states beyond the densest contention seen in
    #: training are treated like the training extreme rather than
    #: linearly extrapolated into nonsense.
    feature_low: Optional[np.ndarray] = None
    feature_high: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.thread_model.dim != NUM_FEATURES:
            raise ValueError(
                f"thread model must be {NUM_FEATURES}-d, "
                f"got {self.thread_model.dim}"
            )
        if self.env_model.dim != NUM_FEATURES:
            raise ValueError(
                f"environment model must be {NUM_FEATURES}-d, "
                f"got {self.env_model.dim}"
            )
        for bound in (self.feature_low, self.feature_high):
            if bound is not None and np.asarray(bound).shape != (
                NUM_FEATURES,
            ):
                raise ValueError(
                    f"feature envelope must have shape ({NUM_FEATURES},)"
                )

    def _clip(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=float)
        if not np.isfinite(features).all():
            # Degenerate input (faulty sensor, chaos injection): NaN in
            # one dimension would make the dot product NaN.  Zero the
            # bad entries — "no signal" — before trusting the model.
            features = np.where(np.isfinite(features), features, 0.0)
        if self.feature_low is None or self.feature_high is None:
            return features
        return np.clip(features, self.feature_low, self.feature_high)

    def predict_threads(self, features: np.ndarray,
                        max_threads: int) -> int:
        """w(f): the thread count, clamped to [1, max_threads].

        Never NaN and never below 1: a non-finite model output (only
        possible if the model itself carries non-finite weights)
        degrades to the minimal safe count of one thread.
        """
        raw = self.thread_model.predict_one(self._clip(features))
        if not math.isfinite(raw):
            return 1
        return int(max(1, min(max_threads, round(raw))))

    def predict_env_norm(self, features: np.ndarray) -> float:
        """m(f): predicted ‖e_{t+1}‖ (clamped to be non-negative).

        Clipped to the training envelope like the thread predictor.
        This is what keeps the paper's m-w correlation honest: outside
        an expert's training domain its thread predictions are unusable
        *and* its environment predictions saturate at the domain edge,
        so the selector (which only sees environment accuracy) steers
        away from exactly the experts whose mapping advice would be
        stale.
        """
        raw = self.env_model.predict_one(self._clip(features))
        if not math.isfinite(raw):
            return 0.0
        return max(0.0, raw)

    def env_error(self, features: np.ndarray,
                  observed_norm: float) -> float:
        """|‖ê‖ - ‖e‖|: the prediction error the selector minimises."""
        return abs(self.predict_env_norm(features) - observed_norm)

    def without_envelope(self) -> "Expert":
        """A copy that applies its linear models raw (no clipping)."""
        return Expert(
            name=self.name,
            thread_model=self.thread_model,
            env_model=self.env_model,
            provenance=self.provenance,
            feature_low=None,
            feature_high=None,
        )

    def with_envelope_margin(self, margin: float) -> "Expert":
        """A copy whose envelope is widened by ``margin`` x its width.

        Used for the "Offline" baseline: a single deployed model gets a
        generic trust region somewhat beyond its data, rather than the
        tight per-slice envelopes the mixture's experts use.
        """
        if margin < 0:
            raise ValueError("margin must be non-negative")
        if self.feature_low is None or self.feature_high is None:
            return self
        width = self.feature_high - self.feature_low
        return Expert(
            name=self.name,
            thread_model=self.thread_model,
            env_model=self.env_model,
            provenance=self.provenance,
            feature_low=self.feature_low - margin * width,
            feature_high=self.feature_high + margin * width,
        )

    # -- batch-axis variants ------------------------------------------------
    #
    # The serving fleet evaluates whole micro-batches of decisions at
    # once.  Each method below is bit-identical per row to its scalar
    # counterpart: the elementwise work (isfinite masking, envelope
    # clipping) is hoisted over the batch axis, while every *reduction*
    # (the model dot products) stays a per-row call on a contiguous row
    # slice — BLAS batch matmul accumulates in a different order than
    # the per-row kernel and drifts in the last ulp, which would break
    # the serve layer's bit-identical replay contract.

    def _clip_batch(self, matrix: np.ndarray) -> np.ndarray:
        matrix = np.ascontiguousarray(matrix, dtype=float)
        mask = np.isfinite(matrix)
        if not mask.all():
            matrix = np.where(mask, matrix, 0.0)
        if self.feature_low is None or self.feature_high is None:
            return matrix
        return np.clip(matrix, self.feature_low, self.feature_high)

    def predict_threads_batch(
        self, matrix: np.ndarray, max_threads: np.ndarray
    ) -> np.ndarray:
        """Per-row :meth:`predict_threads` over ``(B, F)`` rows.

        ``max_threads`` may be a scalar or a ``(B,)`` per-row array.
        """
        clipped = self._clip_batch(matrix)
        limits = np.broadcast_to(
            np.asarray(max_threads, dtype=np.int64), (len(clipped),)
        )
        model = self.thread_model
        out = np.empty(len(clipped), dtype=np.int64)
        for i in range(len(clipped)):
            raw = model.predict_one(clipped[i])
            if not math.isfinite(raw):
                out[i] = 1
            else:
                out[i] = int(max(1, min(int(limits[i]), round(raw))))
        return out

    def predict_env_norm_batch(self, matrix: np.ndarray) -> np.ndarray:
        """Per-row :meth:`predict_env_norm` over ``(B, F)`` rows."""
        clipped = self._clip_batch(matrix)
        model = self.env_model
        out = np.empty(len(clipped), dtype=float)
        for i in range(len(clipped)):
            raw = model.predict_one(clipped[i])
            out[i] = max(0.0, raw) if math.isfinite(raw) else 0.0
        return out

    def domain_distance_batch(self, matrix: np.ndarray) -> np.ndarray:
        """Per-row :meth:`domain_distance` over ``(B, F)`` rows."""
        matrix = np.ascontiguousarray(matrix, dtype=float)
        if self.feature_low is None or self.feature_high is None:
            return np.zeros(len(matrix))
        width = np.maximum(self.feature_high - self.feature_low, 1e-9)
        below = np.maximum(self.feature_low - matrix, 0.0)
        above = np.maximum(matrix - self.feature_high, 0.0)
        displacement = (below + above) / width
        squared = displacement * displacement
        out = np.empty(len(matrix), dtype=float)
        for i in range(len(matrix)):
            out[i] = float(np.sqrt(np.mean(squared[i])))
        return out

    def domain_distance(self, features: np.ndarray) -> float:
        """How far outside this expert's training envelope ``f`` lies.

        Zero inside the envelope; otherwise the RMS of the per-feature
        clip displacement, scaled by the envelope's width (so a 12-core
        expert asked about a 32-processor state is ~2 envelope-widths
        out on the processors axis).  The mixture adds this, weighted,
        to the environment error: an expert has no *expertise* where it
        has no data, however plausible its extrapolated numbers look.
        """
        if self.feature_low is None or self.feature_high is None:
            return 0.0
        features = np.asarray(features, dtype=float)
        width = np.maximum(self.feature_high - self.feature_low, 1e-9)
        below = np.maximum(self.feature_low - features, 0.0)
        above = np.maximum(features - self.feature_high, 0.0)
        displacement = (below + above) / width
        return float(np.sqrt(np.mean(displacement * displacement)))


#: Default ridge strength for expert models (standardized space).
DEFAULT_RIDGE = 1.0


def train_expert(
    name: str,
    samples: Sequence[FeatureSample],
    provenance: str = "",
    ridge: float = DEFAULT_RIDGE,
) -> Expert:
    """Fit an expert's two linear models on a training slice.

    Both models use standardized ridge regression: the expert must rely
    on signals that generalise across programs (processors, load) rather
    than memorising each training program through its code features.
    """
    samples = list(samples)
    if not samples:
        raise ValueError(f"expert {name!r}: no training samples")
    X = np.stack([s.features for s in samples])
    thread_targets = np.array([s.best_threads for s in samples], float)
    env_targets = np.array([s.next_env_norm for s in samples], float)
    thread_model = fit_least_squares(
        X, thread_targets, feature_names=FEATURE_NAMES, ridge=ridge,
        standardize=True,
    )
    env_model = fit_least_squares(
        X, env_targets, feature_names=FEATURE_NAMES, ridge=ridge,
        standardize=True,
    )
    return Expert(
        name=name,
        thread_model=thread_model,
        env_model=env_model,
        provenance=provenance,
        feature_low=X.min(axis=0),
        feature_high=X.max(axis=0),
    )
