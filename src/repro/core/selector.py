"""The expert selector M (Sections 4.2, 5.3).

``M`` maps a feature vector to the expert whose *environment prediction*
is expected to be most accurate there: "select the expert that is most
accurate in predicting the environment.  As this can be evaluated at
each time step, it can be used to build, online, the mixture of experts
model M."

Section 5.3 realises M as "a series of hyperplanes S in the
10-dimensional feature space" whose regions assign experts, seeded with
an even partition and adjusted online; "To minimize runtime overhead, we
only use data from the last timestep to update the model."

We implement this as a multiclass perceptron over running-z-normalised
features: each expert owns a linear score, the pairwise decision
boundaries are the hyperplanes, and a margin-gated perceptron update
reclassifies genuinely mispredicted points — the paper's "If there was
a misprediction, the hyperplane S would be updated to reclassify this
feature point."  See :class:`HyperplaneSelector` for details.

Alternative selectors used by the ablation benchmarks live here too
(frozen partitions, a feature-blind recent-accuracy tracker, and
uniform-random choice).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Sequence

import numpy as np


#: Below this many rows a ``select_batch`` call falls back to the plain
#: scalar loop — the same idiom as ``runtime.kernels.SCALAR_SPAN_MAX``:
#: for tiny batches the array bookkeeping costs more than the hoisted
#: elementwise work saves, and the scalar path is the reference anyway.
SCALAR_BATCH_MAX = 8


def _finite_features(features: np.ndarray) -> np.ndarray:
    """Float view of ``features`` with non-finite entries zeroed."""
    features = np.asarray(features, dtype=float)
    mask = np.isfinite(features)
    if mask.all():
        return features
    return np.where(mask, features, 0.0)


class ExpertSelector(Protocol):
    """Chooses an expert index from a feature vector; learns online."""

    def select(self, features: np.ndarray) -> int:
        ...

    def update(self, features: np.ndarray,
               errors: Sequence[float]) -> bool:
        """Learn from last timestep's per-expert env errors.

        Returns True when the selector's choice at ``features`` differed
        from the most accurate expert (a misprediction).
        """
        ...

    def reset(self) -> None:
        ...


class SelectorJournalSink(Protocol):
    """Receives every state-mutating selector operation, in order.

    The serving runtime (:mod:`repro.serve`) attaches a sink that
    appends these operations to a write-ahead journal; replaying them
    through the selector's real ``update``/``select`` methods restores
    bit-identical state after a crash.  Only *sanitized* inputs are
    recorded — what the selector actually consumed — so a replay never
    re-runs input validation differently than the original call did.
    """

    def record_update(
        self, features: np.ndarray, errors: Sequence[float]
    ) -> None:
        ...

    def record_select(self, features: np.ndarray) -> None:
        ...


class _RunningNormalizer:
    """Online per-dimension z-normalisation (Welford)."""

    def __init__(self, dim: int):
        self._dim = dim
        self.reset()

    def reset(self) -> None:
        self._count = 0
        self._mean = np.zeros(self._dim)
        self._m2 = np.zeros(self._dim)

    def observe(self, x: np.ndarray) -> None:
        self._count += 1
        delta = x - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (x - self._mean)

    def normalize(self, x: np.ndarray) -> np.ndarray:
        if self._count < 2:
            return np.zeros_like(x)
        std = np.sqrt(self._m2 / (self._count - 1))
        std = np.where(std < 1e-9, 1.0, std)
        return (x - self._mean) / std


@dataclass
class SelectorStats:
    """Bookkeeping exposed to the analyses (Figures 15a/15b)."""

    selections: List[int] = field(default_factory=list)
    updates: int = 0
    mispredictions: int = 0

    @property
    def misprediction_rate(self) -> float:
        if self.updates == 0:
            return 0.0
        return self.mispredictions / self.updates

    def selection_counts(self, num_experts: int) -> List[int]:
        counts = [0] * num_experts
        for k in self.selections:
            counts[k] += 1
        return counts


class HyperplaneSelector:
    """The paper's selector: feature-space hyperplanes, online updates.

    Each expert k owns a linear score ``g_k(f) = v_k·z(f) + b_k`` over
    the running-normalised features; the selected expert is the argmax.
    The decision boundaries ``{f : g_i(f) = g_j(f)}`` are exactly the
    "series of hyperplanes S in the 10-dimensional feature space" of
    Section 5.3, and the regions they carve are "the regions in the
    feature space where one expert is more accurate than the others".

    Learning is a multiclass perceptron on last-timestep data only: when
    the selected expert was not the most environment-accurate one, the
    accurate expert's hyperplane is pulled toward the point and the
    wrongly-chosen one pushed away — "If there was a misprediction, the
    hyperplane S would be updated to reclassify this feature point."

    The initial partition is even: all scores start at zero and ties
    are broken round-robin, so before any feedback each expert is chosen
    equally often.
    """

    def __init__(
        self,
        num_experts: int,
        dim: int,
        learning_rate: float = 0.5,
        margin: float = 0.2,
    ):
        if num_experts < 1:
            raise ValueError("need at least one expert")
        if dim < 1:
            raise ValueError("dim must be >= 1")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if margin < 0:
            raise ValueError("margin must be non-negative")
        self._num_experts = num_experts
        self._dim = dim
        self._lr = learning_rate
        self._margin = margin
        self._journal: Optional[SelectorJournalSink] = None
        self.reset()

    def attach_journal(self, sink: SelectorJournalSink) -> None:
        """Mirror every state-mutating operation into ``sink``.

        Attach *after* any snapshot restore / journal replay, or the
        replayed operations would be journaled a second time.
        """
        self._journal = sink

    def detach_journal(self) -> None:
        self._journal = None

    def reset(self) -> None:
        """Return to the initial partition (even, or a pre-seeded one)."""
        initial = getattr(self, "_initial_state", None)
        if initial is not None:
            self.load_state(initial, as_initial=False)
            self.stats = SelectorStats()
            return
        self._normalizer = _RunningNormalizer(self._dim)
        self._V = np.zeros((self._num_experts, self._dim))
        self._b = np.zeros(self._num_experts)
        self._tie_breaker = 0
        self.stats = SelectorStats()

    # -- state snapshot (for offline pre-seeding) --------------------------

    def export_state(self) -> dict:
        """Serializable snapshot of the learned partition.

        Includes the round-robin tie-breaker counter: two selectors
        with identical hyperplanes but different tie-breaker phases
        diverge on the very next tied selection, so bit-identical
        crash recovery has to carry it.
        """
        norm = self._normalizer
        return {
            "V": self._V.copy(),
            "b": self._b.copy(),
            "norm_count": norm._count,
            "norm_mean": norm._mean.copy(),
            "norm_m2": norm._m2.copy(),
            "tie_breaker": self._tie_breaker,
        }

    def load_state(self, state: dict, as_initial: bool = True) -> None:
        """Install a snapshot; with ``as_initial``, reset() returns to it.

        Used to deploy a selector pre-seeded on the offline training
        data, so runtime adaptation starts from an informed partition
        instead of re-learning the platform from scratch on every run.
        """
        self._V = np.array(state["V"], dtype=float)
        self._b = np.array(state["b"], dtype=float)
        if self._V.shape != (self._num_experts, self._dim):
            raise ValueError("state shape does not match this selector")
        normalizer = _RunningNormalizer(self._dim)
        normalizer._count = int(state["norm_count"])
        normalizer._mean = np.array(state["norm_mean"], dtype=float)
        normalizer._m2 = np.array(state["norm_m2"], dtype=float)
        self._normalizer = normalizer
        # Pre-serve snapshots (older states) carry no tie-breaker; a
        # fresh phase is correct for those, required for crash recovery.
        self._tie_breaker = int(state.get("tie_breaker", 0))
        self.stats = SelectorStats()
        if as_initial:
            self._initial_state = {
                "V": self._V.copy(),
                "b": self._b.copy(),
                "norm_count": normalizer._count,
                "norm_mean": normalizer._mean.copy(),
                "norm_m2": normalizer._m2.copy(),
                "tie_breaker": self._tie_breaker,
            }

    def best_index(self) -> int:
        """Expert favoured by the learned partition overall.

        The bias term accumulates +lr for every point pulled toward an
        expert and -lr for every push away, so its argmax is the expert
        the online feedback has favoured most — and unlike selection
        counts it is part of persisted state, so the answer is stable
        across a crash/restart.  Ties resolve to the lowest index.
        """
        return int(np.argmax(self._b))

    @property
    def num_experts(self) -> int:
        return self._num_experts

    @property
    def hyperplanes(self) -> np.ndarray:
        """Per-expert (weights, bias) rows: shape (K, dim + 1)."""
        return np.hstack([self._V, self._b[:, None]])

    def _scores(self, x: np.ndarray) -> np.ndarray:
        return self._V @ x + self._b

    def _choose(self, x: np.ndarray) -> int:
        scores = self._scores(x)
        best = float(scores.max())
        contenders = np.flatnonzero(scores >= best - 1e-12)
        if len(contenders) == 1:
            return int(contenders[0])
        # Even initial partition: rotate through tied experts.
        choice = int(contenders[self._tie_breaker % len(contenders)])
        self._tie_breaker += 1
        return choice

    def select(self, features: np.ndarray) -> int:
        features = _finite_features(features)
        if self._journal is not None:
            self._journal.record_select(features)
        x = self._normalizer.normalize(features)
        choice = self._choose(x)
        self.stats.selections.append(choice)
        return choice

    def select_batch(self, matrix: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`select` over ``(B, F)`` feature rows.

        Bit-identical to ``[self.select(row) for row in matrix]``: a
        pure select never touches the running normaliser, so the
        z-normalisation — an elementwise broadcast of the *same*
        ``(x - mean) / std`` expression — is hoisted into one batch
        operation, while the score reduction ``V @ z + b`` stays a
        per-row call on a contiguous row slice (a batched matmul
        accumulates in a different order and drifts in the last ulp)
        and the round-robin tie-breaker advances sequentially row by
        row exactly as the scalar loop would.
        """
        matrix = np.ascontiguousarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise ValueError(
                f"expected a (B, F) feature matrix, got {matrix.shape}"
            )
        if len(matrix) <= SCALAR_BATCH_MAX:
            return np.array(
                [self.select(row) for row in matrix], dtype=np.int64
            )
        mask = np.isfinite(matrix)
        if not mask.all():
            matrix = np.where(mask, matrix, 0.0)
        if self._journal is not None:
            for row in matrix:
                self._journal.record_select(row)
        norm = self._normalizer
        if norm._count < 2:
            normed = np.zeros_like(matrix)
        else:
            std = np.sqrt(norm._m2 / (norm._count - 1))
            std = np.where(std < 1e-9, 1.0, std)
            normed = np.ascontiguousarray((matrix - norm._mean) / std)
        choices = np.empty(len(matrix), dtype=np.int64)
        for i in range(len(matrix)):
            choice = self._choose(normed[i])
            self.stats.selections.append(choice)
            choices[i] = choice
        return choices

    def update(self, features: np.ndarray,
               errors: Sequence[float]) -> bool:
        """Perceptron update toward the most-accurate expert.

        Non-finite errors (a NaN observation propagated into the
        scoring) make the update a no-op: one poisoned timestep must
        not corrupt the learned partition, and ``argmin`` over NaN is
        meaningless anyway.  Non-finite feature entries are zeroed
        before they can reach the running normaliser — a single NaN
        observed by Welford's accumulator would stay NaN forever.
        """
        errors = list(errors)
        if len(errors) != self._num_experts:
            raise ValueError(
                f"expected {self._num_experts} errors, got {len(errors)}"
            )
        if not all(math.isfinite(float(e)) for e in errors):
            return False
        features = _finite_features(features)
        # Journal before mutating: a crash after the record is written
        # but before the mutation lands replays the op on restart, which
        # reproduces exactly the state this call was about to produce.
        if self._journal is not None:
            self._journal.record_update(features, errors)
        self._normalizer.observe(features)
        x = self._normalizer.normalize(features)
        predicted = self._choose(x)
        desired = int(np.argmin(errors))
        self.stats.updates += 1
        if predicted == desired:
            return False
        # Only reclassify on a *meaningful* misprediction: when experts'
        # errors are within the margin of each other the disagreement is
        # measurement noise, and flip-flopping between near-equal experts
        # costs more than it gains.
        if errors[desired] >= (1.0 - self._margin) * errors[predicted]:
            return False
        self.stats.mispredictions += 1
        self._V[desired] += self._lr * x
        self._b[desired] += self._lr
        self._V[predicted] -= self._lr * x
        self._b[predicted] -= self._lr
        return True


class FrozenEvenSelector(HyperplaneSelector):
    """The even initial partition with online updates disabled.

    Ablation: how much does Section 5.3's online adjustment buy?  With
    zero scores forever, selection stays round-robin across experts.
    """

    def update(self, features: np.ndarray,
               errors: Sequence[float]) -> bool:
        errors = list(errors)
        if not all(math.isfinite(float(e)) for e in errors):
            return False
        features = _finite_features(features)
        if self._journal is not None:
            self._journal.record_update(features, errors)
        self._normalizer.observe(features)
        x = self._normalizer.normalize(features)
        predicted = self._choose(x)
        desired = int(np.argmin(errors))
        self.stats.updates += 1
        if predicted != desired:
            self.stats.mispredictions += 1
            return True
        return False


class AccuracyEMASelector:
    """Feature-blind alternative: pick the expert with the lowest
    exponentially-averaged recent environment error.

    Ablation: is partitioning the *feature space* (so different regions
    prefer different experts) better than simply tracking which expert
    has been accurate lately?
    """

    def __init__(self, num_experts: int, decay: float = 0.8):
        if not 0.0 < decay < 1.0:
            raise ValueError("decay must be in (0, 1)")
        self._num_experts = num_experts
        self._decay = decay
        self.reset()

    def reset(self) -> None:
        self._ema = np.zeros(self._num_experts)
        self._seen = False
        self.stats = SelectorStats()

    def select(self, features: np.ndarray) -> int:
        choice = int(np.argmin(self._ema)) if self._seen else 0
        self.stats.selections.append(choice)
        return choice

    def update(self, features: np.ndarray,
               errors: Sequence[float]) -> bool:
        errors = np.asarray(list(errors), dtype=float)
        if errors.shape != (self._num_experts,):
            raise ValueError(
                f"expected {self._num_experts} errors, got {errors.shape}"
            )
        if not np.isfinite(errors).all():
            return False
        predicted = int(np.argmin(self._ema)) if self._seen else 0
        if self._seen:
            self._ema = self._decay * self._ema + (1 - self._decay) * errors
        else:
            self._ema = errors.copy()
            self._seen = True
        desired = int(np.argmin(errors))
        self.stats.updates += 1
        if predicted != desired:
            self.stats.mispredictions += 1
            return True
        return False


class RandomSelector:
    """Uniform-random expert choice (ablation lower bound)."""

    def __init__(self, num_experts: int, seed: int = 0):
        self._num_experts = num_experts
        self._seed = seed
        self.reset()

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)
        self.stats = SelectorStats()

    def select(self, features: np.ndarray) -> int:
        choice = int(self._rng.integers(self._num_experts))
        self.stats.selections.append(choice)
        return choice

    def update(self, features: np.ndarray,
               errors: Sequence[float]) -> bool:
        self.stats.updates += 1
        return False
