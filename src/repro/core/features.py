"""The paper's 10-dimensional feature vector (Table 1).

``f = [c || e]``: three static code features from the compiler and seven
environment features from the OS.  At loop *i* the vector is
``f_i = (f_i^1, ..., f_i^10)``; code features are normalized to the total
number of instructions in the program (done in
:mod:`repro.compiler.features`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..compiler.features import CODE_FEATURE_NAMES, CodeFeatures
from ..sched.stats import ENV_FEATURE_NAMES, EnvironmentSample, environment_norm

#: All ten canonical feature names, Table 1 order (f^1..f^10).
FEATURE_NAMES: tuple[str, ...] = CODE_FEATURE_NAMES + ENV_FEATURE_NAMES

#: Dimensionality of the canonical feature space.
NUM_FEATURES = len(FEATURE_NAMES)

#: Index of the first environment feature (f^4) within the vector.
ENV_OFFSET = len(CODE_FEATURE_NAMES)


def make_feature_vector(
    code: CodeFeatures, env: EnvironmentSample
) -> np.ndarray:
    """Assemble the 10-d feature vector for one loop entry."""
    return np.concatenate(
        [np.asarray(code.as_tuple(), dtype=float), env.as_vector()]
    )


def sanitize_features(
    features: np.ndarray,
) -> tuple[np.ndarray, bool]:
    """``(clean, was_degenerate)``: non-finite entries replaced by 0.0.

    Faulty environment sensors (chaos injection, a real ``/proc`` read
    racing a counter reset) can leave NaN/inf in the vector; a linear
    model fed one NaN returns NaN for everything downstream.  Zero is
    the canonical "no signal" value here — features are normalised and
    the selector z-scores them, so a zeroed dimension simply stops
    discriminating instead of poisoning the whole prediction.
    """
    features = np.asarray(features, dtype=float)
    mask = np.isfinite(features)
    if mask.all():
        return features, False
    return np.where(mask, features, 0.0), True


def sanitize_features_batch(
    features: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Batch-axis :func:`sanitize_features` over a ``(B, F)`` matrix.

    Returns ``(clean, degenerate)`` where ``degenerate[i]`` is True iff
    row ``i`` contained a non-finite entry.  Bit-identical per row to
    the scalar call: the replacement is purely elementwise (``np.where``
    against an ``isfinite`` mask), so hoisting it over the batch axis
    cannot change a single float.  The result is C-contiguous so row
    slices feed the same contiguous-dot code path the scalar vectors do.
    """
    matrix = np.ascontiguousarray(features, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(
            f"expected a (B, F) feature matrix, got shape {matrix.shape}"
        )
    mask = np.isfinite(matrix)
    degenerate = ~mask.all(axis=1)
    if not degenerate.any():
        return matrix, degenerate
    return np.where(mask, matrix, 0.0), degenerate


def env_part(features: np.ndarray) -> np.ndarray:
    """The environment slice (f^4..f^10) of a feature vector."""
    features = np.asarray(features, dtype=float)
    if features.shape[-1] != NUM_FEATURES:
        raise ValueError(
            f"expected {NUM_FEATURES}-d feature vector(s), "
            f"got shape {features.shape}"
        )
    return features[..., ENV_OFFSET:]


def env_norm_of(features: np.ndarray) -> float:
    """‖e‖ of the environment embedded in a single feature vector."""
    return environment_norm(env_part(features))


@dataclass(frozen=True)
class FeatureSample:
    """One labelled observation used in training.

    ``features`` is f_t, ``best_threads`` the thread count that maximised
    speedup at t, ``speedup`` the speedup it achieved, and
    ``next_env_norm`` the measured ‖e_{t+1}‖ — the target of the
    environment predictor.
    """

    features: np.ndarray
    best_threads: int
    speedup: float
    next_env_norm: float
    program: str = ""
    platform: str = ""

    def __post_init__(self) -> None:
        vec = np.asarray(self.features, dtype=float)
        if vec.shape != (NUM_FEATURES,):
            raise ValueError(
                f"features must have shape ({NUM_FEATURES},), "
                f"got {vec.shape}"
            )
        if self.best_threads < 1:
            raise ValueError("best_threads must be >= 1")
        if self.speedup <= 0:
            raise ValueError("speedup must be positive")
        if self.next_env_norm < 0:
            raise ValueError("next_env_norm cannot be negative")
