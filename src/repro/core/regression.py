"""Least-squares linear regression (Section 5.2.3).

"We use a linear regression technique employing standard least squares
to build two models that fit the training data. ... Learning a model for
this data is simply finding the best linear fit to the data i.e.
determining weights for each selected feature (w1 f1 + ... + wn fn + β)."

A tiny ridge term keeps the normal equations well-posed when features are
collinear (e.g. a training set where the processor count never changes);
with informative data its effect is negligible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class LinearModel:
    """A fitted linear model ``y = w·f + beta``."""

    weights: np.ndarray
    intercept: float
    feature_names: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "weights", np.asarray(self.weights, dtype=float)
        )
        if self.weights.ndim != 1:
            raise ValueError("weights must be a 1-d vector")
        if self.feature_names and len(self.feature_names) != len(self.weights):
            raise ValueError("feature_names length must match weights")

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict for one vector (returns scalar) or a matrix of rows."""
        features = np.asarray(features, dtype=float)
        result = features @ self.weights + self.intercept
        return result

    def predict_one(self, features: np.ndarray) -> float:
        features = np.asarray(features, dtype=float)
        if features.shape != self.weights.shape:
            raise ValueError(
                f"expected feature vector of shape {self.weights.shape}, "
                f"got {features.shape}"
            )
        return float(features @ self.weights + self.intercept)

    @property
    def dim(self) -> int:
        return len(self.weights)


def fit_least_squares(
    X: np.ndarray,
    y: np.ndarray,
    feature_names: Sequence[str] = (),
    ridge: float = 1e-6,
    standardize: bool = False,
) -> LinearModel:
    """Fit ``y = w·x + beta`` by (ridge-stabilised) least squares.

    With ``standardize=True`` the regression is solved in z-scored
    feature space and the weights folded back to raw space, so a single
    ``ridge`` strength penalises every feature equally regardless of its
    units.  This matters for the experts: the code features are two
    orders of magnitude smaller than the environment features, and an
    unregularised fit turns them into per-program dummy variables that
    extrapolate catastrophically to unseen programs.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim != 2:
        raise ValueError("X must be a 2-d matrix of feature rows")
    if y.shape != (X.shape[0],):
        raise ValueError(
            f"y must have shape ({X.shape[0]},), got {y.shape}"
        )
    if X.shape[0] == 0:
        raise ValueError("cannot fit a model on zero samples")
    if ridge < 0:
        raise ValueError("ridge must be non-negative")

    if standardize:
        mean = X.mean(axis=0)
        std = X.std(axis=0)
        std = np.where(std < 1e-12, 1.0, std)
        Z = (X - mean) / std
        model = fit_least_squares(
            Z, y, feature_names=feature_names, ridge=ridge,
            standardize=False,
        )
        raw_weights = model.weights / std
        raw_intercept = model.intercept - float(raw_weights @ mean)
        return LinearModel(
            weights=raw_weights,
            intercept=raw_intercept,
            feature_names=tuple(feature_names),
        )

    n, d = X.shape
    augmented = np.hstack([X, np.ones((n, 1))])
    gram = augmented.T @ augmented
    if ridge:
        penalty = ridge * np.eye(d + 1)
        penalty[-1, -1] = 0.0  # never penalise the intercept
        gram = gram + penalty
    solution = np.linalg.solve(gram, augmented.T @ y)
    return LinearModel(
        weights=solution[:-1],
        intercept=float(solution[-1]),
        feature_names=tuple(feature_names),
    )


def leave_one_group_out(
    X: np.ndarray,
    y: np.ndarray,
    groups: Sequence[str],
    scorer: Callable[[np.ndarray, np.ndarray], float],
    ridge: float = 1e-6,
) -> Dict[str, float]:
    """Leave-one-group-out cross validation (Section 5.2.3).

    "if we are trying to predict the number of threads for program bt,
    we ensure that bt is not part of the training set" — groups are
    program names.  Returns the held-out score per group.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    groups = list(groups)
    if len(groups) != X.shape[0]:
        raise ValueError("groups length must match number of rows")
    unique = sorted(set(groups))
    if len(unique) < 2:
        raise ValueError("need at least two groups for LOGO-CV")
    scores: Dict[str, float] = {}
    group_arr = np.asarray(groups)
    for held_out in unique:
        mask = group_arr == held_out
        model = fit_least_squares(X[~mask], y[~mask], ridge=ridge)
        predictions = model.predict(X[mask])
        scores[held_out] = scorer(predictions, y[mask])
    return scores


def accuracy_within(
    tolerance: float,
) -> Callable[[np.ndarray, np.ndarray], float]:
    """Scorer: fraction of predictions within a relative tolerance."""
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")

    def scorer(predicted: np.ndarray, actual: np.ndarray) -> float:
        predicted = np.asarray(predicted, dtype=float)
        actual = np.asarray(actual, dtype=float)
        denom = np.maximum(np.abs(actual), 1e-9)
        return float(np.mean(np.abs(predicted - actual) / denom <= tolerance))

    return scorer


def mean_absolute_error(predicted: np.ndarray, actual: np.ndarray) -> float:
    predicted = np.asarray(predicted, dtype=float)
    actual = np.asarray(actual, dtype=float)
    return float(np.mean(np.abs(predicted - actual)))
