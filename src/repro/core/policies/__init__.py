"""Thread-selection policies: the mixture and all evaluated baselines."""

from .base import PolicyContext, RegionReport, ThreadPolicy
from .default import DefaultPolicy
from .fixed import FixedPolicy, RecordingPolicy, SelectionRecord
from .online import OnlineHillClimbPolicy
from .analytic import AnalyticPolicy
from .offline import MonolithicPolicy, OfflinePolicy, SingleExpertPolicy
from .mixture import ExpertDecision, MixturePolicy

__all__ = [
    "AnalyticPolicy",
    "DefaultPolicy",
    "ExpertDecision",
    "FixedPolicy",
    "MixturePolicy",
    "MonolithicPolicy",
    "OfflinePolicy",
    "OnlineHillClimbPolicy",
    "PolicyContext",
    "RecordingPolicy",
    "RegionReport",
    "SelectionRecord",
    "SingleExpertPolicy",
    "ThreadPolicy",
]
