"""Online hill-climbing policy (the paper's "Online" baseline).

Section 6.3: "[Parcae, PLDI'12] is a robust adaptive scheme that employs
hill-climbing technique to change the thread count at runtime based on
execution time."  Section 2 adds the known weaknesses we reproduce:
"there is a delay to reach the best thread number and may stick in local
optimum."

The climber compares the work rate achieved by recent regions against
the rate before its last move; improvement keeps the direction, regress
reverses it.  Rates are only comparable within the same loop, so state
is tracked per loop name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .base import PolicyContext, RegionReport, ThreadPolicy


@dataclass
class _ClimbState:
    threads: int
    direction: int = 1
    last_rate: Optional[float] = None
    last_threads: Optional[int] = None


class OnlineHillClimbPolicy(ThreadPolicy):
    """Per-loop hill climbing on measured region rates."""

    name = "online"

    def __init__(self, step: int = 2, start_fraction: float = 0.5,
                 tolerance: float = 0.02):
        if step < 1:
            raise ValueError("step must be >= 1")
        if not 0.0 < start_fraction <= 1.0:
            raise ValueError("start_fraction must be in (0, 1]")
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        self._step = step
        self._start_fraction = start_fraction
        self._tolerance = tolerance
        self._states: Dict[str, _ClimbState] = {}
        self._max_threads = 1

    def reset(self) -> None:
        self._states = {}

    def _state_for(self, ctx: PolicyContext) -> _ClimbState:
        state = self._states.get(ctx.loop_name)
        if state is None:
            start = max(1, int(round(
                ctx.available_processors * self._start_fraction
            )))
            state = _ClimbState(threads=ctx.clamp(start))
            self._states[ctx.loop_name] = state
        return state

    def select(self, ctx: PolicyContext) -> int:
        self._max_threads = ctx.max_threads
        state = self._state_for(ctx)
        return ctx.clamp(state.threads)

    def observe(self, report: RegionReport) -> None:
        state = self._states.get(report.loop_name)
        if state is None:
            return
        rate = report.rate
        if state.last_rate is not None and state.last_threads is not None:
            if rate < state.last_rate * (1.0 - self._tolerance):
                # Got worse since the last move: reverse.
                state.direction = -state.direction
        state.last_rate = rate
        state.last_threads = report.threads
        proposal = state.threads + state.direction * self._step
        if proposal < 1:
            proposal = 1
            state.direction = 1
        elif proposal > self._max_threads:
            proposal = self._max_threads
            state.direction = -1
        state.threads = proposal
