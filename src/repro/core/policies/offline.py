"""Single offline-model policies: "Offline" baseline and the monolithic
aggregate of Section 7.7.

* :class:`OfflinePolicy` models Emani, Wang & O'Boyle (CGO'13): "a
  machine learning heuristic predicts a thread number at runtime based
  on an offline-trained model".  It predicts from the same features the
  experts use, but with ONE model and no runtime adaptation — the paper
  faults exactly this: "it is limited by its workload training and
  cannot adapt to new environments."

* :class:`MonolithicPolicy` is the Section 7.7 comparison: "a single
  aggregate model with the same total training data" as the whole
  mixture.  Structurally identical to OfflinePolicy; it exists as its
  own named policy so the Figure 14(c) and 16 experiments read like the
  paper.

* :class:`SingleExpertPolicy` deploys one expert alone (the E1..E4 bars
  of Figures 3 and 15(c)).
"""

from __future__ import annotations

from typing import Sequence

from ..expert import Expert
from ..features import FeatureSample
from ..regression import fit_least_squares
from .base import PolicyContext, ThreadPolicy


class SingleExpertPolicy(ThreadPolicy):
    """Always use one expert's thread predictor."""

    def __init__(self, expert: Expert, name: str = ""):
        self.expert = expert
        self.name = name or expert.name

    def select(self, ctx: PolicyContext) -> int:
        threads = self.expert.predict_threads(
            ctx.feature_vector(), ctx.max_threads
        )
        return ctx.snap_to_available(threads)


class OfflinePolicy(SingleExpertPolicy):
    """CGO'13-style single offline model over the pooled training data."""

    def __init__(self, expert: Expert):
        super().__init__(expert, name="offline")


class MonolithicPolicy(SingleExpertPolicy):
    """Section 7.7's 'one generic model' with the mixture's full data."""

    def __init__(self, expert: Expert):
        super().__init__(expert, name="monolithic")
