"""Thread-selection policy interface.

A policy is consulted by the runtime at every parallel-region entry
(:meth:`ThreadPolicy.select`) and informed when a region completes
(:meth:`ThreadPolicy.observe`) — the latter is what reactive policies
(online hill-climbing, the analytic model) feed on.  Policies carry
mutable state; :meth:`ThreadPolicy.reset` returns them to their initial
state so one policy object can be reused across runs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ...compiler.features import CodeFeatures
from ...sched.stats import EnvironmentSample
from ..features import make_feature_vector


@dataclass(frozen=True)
class PolicyContext:
    """Everything a policy may look at when selecting a thread count."""

    time: float
    loop_name: str
    code: CodeFeatures
    env: EnvironmentSample
    available_processors: int
    max_threads: int

    def feature_vector(self) -> np.ndarray:
        """The canonical 10-d feature vector f_t."""
        return make_feature_vector(self.code, self.env)

    def clamp(self, threads: float) -> int:
        """Round and clamp a raw prediction to a legal thread count."""
        return int(max(1, min(self.max_threads, round(threads))))

    def snap_to_available(self, threads: int) -> int:
        """Round near-full predictions up to the available processors.

        Regression-based thread predictors systematically shrink their
        top predictions toward the training mean (ridge bias), turning
        "use the whole machine" into 29-of-32.  Whenever the prediction
        is within 20% below the available processor count, the intent is
        clearly the full set — use it.  On an (almost) idle machine the
        snap is far more permissive: occupying free cores has no
        contention victim, so anything above half the machine means
        "take it all".  Predictions well below the threshold stay
        untouched.
        """
        available = min(self.available_processors, self.max_threads)
        idle = self.env.workload_threads < 2
        threshold = 0.5 if idle else 0.8
        if threads >= threshold * available:
            return max(threads, available)
        return threads


@dataclass(frozen=True)
class RegionReport:
    """Measured outcome of one completed parallel region."""

    time: float
    loop_name: str
    threads: int
    elapsed: float
    work: float

    @property
    def rate(self) -> float:
        """Work units per second achieved (higher is better)."""
        if self.elapsed <= 0:
            return float("inf")
        return self.work / self.elapsed

    @property
    def speedup(self) -> float:
        """Speedup over a single dedicated core for this region."""
        return self.rate  # work is in core-seconds: rate 1.0 == 1 core


class ThreadPolicy(abc.ABC):
    """Base class for all thread-selection policies."""

    #: Short name used in result tables ("default", "mixture", ...).
    name: str = "policy"

    @abc.abstractmethod
    def select(self, ctx: PolicyContext) -> int:
        """Thread count for the region about to start."""

    def observe(self, report: RegionReport) -> None:
        """Feedback after a region completes.  Default: ignore."""

    def reset(self) -> None:
        """Restore initial state.  Default: stateless, nothing to do."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"
