"""Fixed thread-count policy, and a recording wrapper.

``FixedPolicy`` always requests the same thread count — it is how
training runs sweep thread counts (Section 5.2.1), and how workload
programs with a static configuration execute.

``RecordingPolicy`` wraps any policy and logs the feature vector seen at
every selection; the trainer replays best-thread runs under it to
harvest (f_t, n*, ‖e_{t+1}‖) samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from .base import PolicyContext, RegionReport, ThreadPolicy


class FixedPolicy(ThreadPolicy):
    """Always select ``threads`` (clamped to the machine)."""

    def __init__(self, threads: int):
        if threads < 1:
            raise ValueError("threads must be >= 1")
        self.threads = threads
        self.name = f"fixed-{threads}"

    def select(self, ctx: PolicyContext) -> int:
        return ctx.clamp(self.threads)


@dataclass
class SelectionRecord:
    """One logged consultation."""

    time: float
    loop_name: str
    features: np.ndarray
    threads: int


class RecordingPolicy(ThreadPolicy):
    """Wraps a policy, logging features and decisions at each select."""

    def __init__(self, inner: ThreadPolicy):
        self.inner = inner
        self.name = f"recording({inner.name})"
        self.records: List[SelectionRecord] = []

    def select(self, ctx: PolicyContext) -> int:
        threads = self.inner.select(ctx)
        self.records.append(SelectionRecord(
            time=ctx.time,
            loop_name=ctx.loop_name,
            features=ctx.feature_vector(),
            threads=threads,
        ))
        return threads

    def observe(self, report: RegionReport) -> None:
        self.inner.observe(report)

    def reset(self) -> None:
        # Recorded history is the product of the run; keep it.
        self.inner.reset()
