"""The OpenMP default policy (the paper's baseline).

Section 6.3: "OpenMP default policy assigns a thread number equal to the
current number of available processors."  It is environment-oblivious
beyond the processor count — under co-execution it oversubscribes the
machine, which is exactly the contention the smarter policies avoid.
"""

from __future__ import annotations

from .base import PolicyContext, ThreadPolicy


class DefaultPolicy(ThreadPolicy):
    """threads = number of currently available processors."""

    name = "default"

    def select(self, ctx: PolicyContext) -> int:
        return ctx.clamp(ctx.available_processors)
