"""The Mixture of Experts policy — the paper's contribution.

At every parallel-region entry (Section 4.2, Figure 4):

1. The previous timestep's pending environment predictions are scored
   against the environment just observed; the selector learns from the
   per-expert errors ``a^k = |‖ê^k‖ - ‖e‖|`` (last-timestep data only,
   Section 5.3).
2. The selector M picks the expert for the current features.
3. That expert's thread predictor supplies the thread count.

The policy never tries thread counts out ("it does not try out different
policies ... as this is too expensive"); adaptation comes entirely from
the environment-prediction proxy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..expert import Expert
from ..features import NUM_FEATURES, sanitize_features
from ..selector import ExpertSelector, HyperplaneSelector
from .base import PolicyContext, ThreadPolicy


@dataclass(frozen=True)
class ExpertDecision:
    """One mixture decision, kept for the Section 8 analyses."""

    time: float
    loop_name: str
    expert_index: int
    threads: int
    #: Each expert's predicted ‖ê_{t+1}‖ at this decision.
    predicted_norms: tuple[float, ...]
    #: Each expert's thread prediction at this decision (what every
    #: expert *would* have chosen — feeds the Figure 17 analysis).
    predicted_threads: tuple[int, ...] = ()
    #: Observed ‖e_t‖ when the *next* decision was made (None for the
    #: final decision of a run).
    observed_next_norm: Optional[float] = None


@dataclass
class _Pending:
    features: np.ndarray
    predicted_norms: tuple[float, ...]
    decision_index: int


class MixturePolicy(ThreadPolicy):
    """Expert selector + expert pool, learning online."""

    name = "mixture"

    def __init__(
        self,
        experts: Sequence[Expert],
        selector: Optional[ExpertSelector] = None,
        domain_weight: float = 5.0,
    ):
        experts = tuple(experts)
        if not experts:
            raise ValueError("MixturePolicy needs at least one expert")
        if domain_weight < 0:
            raise ValueError("domain_weight must be non-negative")
        self.experts = experts
        #: Weight of the domain-distance term added to each expert's
        #: environment error before the selector learns from it (see
        #: :meth:`repro.core.expert.Expert.domain_distance`).
        self.domain_weight = domain_weight
        self._selector = selector or HyperplaneSelector(
            num_experts=len(experts), dim=NUM_FEATURES
        )
        self.decisions: List[ExpertDecision] = []
        self._pending: Optional[_Pending] = None
        #: Times the policy refused to trust degenerate inputs and fell
        #: back to the safe default thread count (surfaced as
        #: ``RunSummary.policy_fallbacks``).
        self.fallback_count = 0

    @property
    def selector(self) -> ExpertSelector:
        return self._selector

    def reset(self) -> None:
        self._selector.reset()
        self.decisions = []
        self._pending = None
        self.fallback_count = 0

    def select(self, ctx: PolicyContext) -> int:
        features, degenerate = sanitize_features(ctx.feature_vector())
        observed_norm = ctx.env.norm
        if not math.isfinite(observed_norm):
            # A NaN/inf observation cannot score anything; discard the
            # pending predictions rather than learn from garbage (the
            # paper's last-timestep-only protocol makes this a plain
            # skip, not a backlog).
            self._pending = None

        # 1. Score last timestep's predictions and train the selector.
        # Errors combine environment-prediction accuracy with how far
        # each expert's training domain is from the observed state.
        # Experts that learn online (Section 4.1 retrofitting) receive
        # the observation too.
        if self._pending is not None:
            for expert in self.experts:
                record = getattr(expert, "record_observation", None)
                if record is not None:
                    record(self._pending.features, observed_norm)
            errors = [
                abs(predicted - observed_norm)
                + self.domain_weight
                * expert.domain_distance(self._pending.features)
                for predicted, expert in zip(
                    self._pending.predicted_norms, self.experts
                )
            ]
            self._selector.update(self._pending.features, errors)
            old = self.decisions[self._pending.decision_index]
            self.decisions[self._pending.decision_index] = ExpertDecision(
                time=old.time,
                loop_name=old.loop_name,
                expert_index=old.expert_index,
                threads=old.threads,
                predicted_norms=old.predicted_norms,
                predicted_threads=old.predicted_threads,
                observed_next_norm=observed_norm,
            )

        if degenerate:
            # Safe fallback (see docs/robustness.md): with corrupted
            # features there is no basis for expertise — behave like
            # the OpenMP default of one thread per available processor,
            # learn nothing, and leave no pending prediction to score
            # against the next (possibly also corrupt) observation.
            self.fallback_count += 1
            self._pending = None
            return ctx.clamp(ctx.available_processors)

        # 2. Select the expert for the current state.
        choice = self._selector.select(features)
        expert = self.experts[choice]

        # 3. Its thread predictor makes the mapping decision.
        threads = ctx.snap_to_available(
            expert.predict_threads(features, ctx.max_threads)
        )

        predicted_norms = tuple(
            e.predict_env_norm(features) for e in self.experts
        )
        predicted_threads = tuple(
            e.predict_threads(features, ctx.max_threads)
            for e in self.experts
        )
        self.decisions.append(ExpertDecision(
            time=ctx.time,
            loop_name=ctx.loop_name,
            expert_index=choice,
            threads=threads,
            predicted_norms=predicted_norms,
            predicted_threads=predicted_threads,
        ))
        self._pending = _Pending(
            features=features,
            predicted_norms=predicted_norms,
            decision_index=len(self.decisions) - 1,
        )
        return threads

    # -- analyses ---------------------------------------------------------

    def selection_counts(self) -> List[int]:
        """How often each expert was chosen (Figure 15b)."""
        counts = [0] * len(self.experts)
        for decision in self.decisions:
            counts[decision.expert_index] += 1
        return counts

    def env_prediction_accuracies(
        self, tolerance: float = 0.25
    ) -> List[float]:
        """Per-expert fraction of env predictions within ``tolerance``
        (relative), over this run's scored decisions (Figure 15a)."""
        scored = [d for d in self.decisions
                  if d.observed_next_norm is not None]
        if not scored:
            return [0.0] * len(self.experts)
        accuracies = []
        for k in range(len(self.experts)):
            hits = sum(
                1 for d in scored
                if abs(d.predicted_norms[k] - d.observed_next_norm)
                <= tolerance * max(d.observed_next_norm, 1e-9)
            )
            accuracies.append(hits / len(scored))
        return accuracies

    def mixture_accuracy(self, tolerance: float = 0.25) -> float:
        """Accuracy of the *chosen* expert's env prediction per step."""
        scored = [d for d in self.decisions
                  if d.observed_next_norm is not None]
        if not scored:
            return 0.0
        hits = sum(
            1 for d in scored
            if abs(d.predicted_norms[d.expert_index] - d.observed_next_norm)
            <= tolerance * max(d.observed_next_norm, 1e-9)
        )
        return hits / len(scored)
