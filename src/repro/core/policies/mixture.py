"""The Mixture of Experts policy — the paper's contribution.

At every parallel-region entry (Section 4.2, Figure 4):

1. The previous timestep's pending environment predictions are scored
   against the environment just observed; the selector learns from the
   per-expert errors ``a^k = |‖ê^k‖ - ‖e‖|`` (last-timestep data only,
   Section 5.3).
2. The selector M picks the expert for the current features.
3. That expert's thread predictor supplies the thread count.

The policy never tries thread counts out ("it does not try out different
policies ... as this is too expensive"); adaptation comes entirely from
the environment-prediction proxy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Sequence

import numpy as np

from ..expert import Expert
from ..features import NUM_FEATURES, sanitize_features, sanitize_features_batch
from ..selector import SCALAR_BATCH_MAX, ExpertSelector, HyperplaneSelector
from .base import PolicyContext, ThreadPolicy


class MixtureJournalSink(Protocol):
    """Receives mixture-level state transitions the selector can't see.

    Discarding a pending prediction (non-finite observation, degenerate
    features) mutates no selector state, yet it changes what the *next*
    request will learn from — so crash recovery has to replay it.  The
    serving runtime records it alongside the selector operations.
    """

    def record_clear(self) -> None:
        ...


@dataclass(frozen=True)
class ExpertDecision:
    """One mixture decision, kept for the Section 8 analyses."""

    time: float
    loop_name: str
    expert_index: int
    threads: int
    #: Each expert's predicted ‖ê_{t+1}‖ at this decision.
    predicted_norms: tuple[float, ...]
    #: Each expert's thread prediction at this decision (what every
    #: expert *would* have chosen — feeds the Figure 17 analysis).
    predicted_threads: tuple[int, ...] = ()
    #: Observed ‖e_t‖ when the *next* decision was made (None for the
    #: final decision of a run).
    observed_next_norm: Optional[float] = None


@dataclass
class _Pending:
    features: np.ndarray
    predicted_norms: tuple[float, ...]
    decision_index: int
    #: Per-expert domain distances at ``features``, cached when the
    #: pending was created by a batch plan.  A pure function of the
    #: frozen experts and the features, so a cache hit and a recompute
    #: are the same floats — the cache only skips redundant work.
    domain: Optional[tuple[float, ...]] = None


@dataclass(frozen=True)
class BatchDecisionPlan:
    """Precomputed pure-function work for a batch of decisions.

    Everything here is a pure function of the (frozen) experts and the
    feature rows: per-expert environment-norm predictions, thread
    predictions, and domain distances.  Precomputing them before the
    sequential learn/select loop therefore cannot observe different
    state than the scalar path — the loop itself (selector updates,
    selects, pending bookkeeping) stays strictly in request order.
    Only valid while no expert learns online (``record_observation``);
    :meth:`MixturePolicy.plan_batch` returns None otherwise.
    """

    features: np.ndarray  # (B, F) sanitized feature rows
    degenerate: np.ndarray  # (B,) bool — row had non-finite entries
    env_norms: np.ndarray  # (B, K) per-expert predicted ‖ê‖
    threads: np.ndarray  # (B, K) per-expert thread predictions
    domain: np.ndarray  # (B, K) per-expert domain distances


class MixturePolicy(ThreadPolicy):
    """Expert selector + expert pool, learning online."""

    name = "mixture"

    def __init__(
        self,
        experts: Sequence[Expert],
        selector: Optional[ExpertSelector] = None,
        domain_weight: float = 5.0,
    ):
        experts = tuple(experts)
        if not experts:
            raise ValueError("MixturePolicy needs at least one expert")
        if domain_weight < 0:
            raise ValueError("domain_weight must be non-negative")
        self.experts = experts
        #: Weight of the domain-distance term added to each expert's
        #: environment error before the selector learns from it (see
        #: :meth:`repro.core.expert.Expert.domain_distance`).
        self.domain_weight = domain_weight
        self._selector = selector or HyperplaneSelector(
            num_experts=len(experts), dim=NUM_FEATURES
        )
        self.decisions: List[ExpertDecision] = []
        self._pending: Optional[_Pending] = None
        #: Times the policy refused to trust degenerate inputs and fell
        #: back to the safe default thread count (surfaced as
        #: ``RunSummary.policy_fallbacks``).
        self.fallback_count = 0
        #: Optional crash-safety sink (see :class:`MixtureJournalSink`).
        self.journal: Optional[MixtureJournalSink] = None

    @property
    def selector(self) -> ExpertSelector:
        return self._selector

    def reset(self) -> None:
        self._selector.reset()
        self.decisions = []
        self._pending = None
        self.fallback_count = 0

    def _discard_pending(self) -> None:
        """Drop the pending prediction, journaling the drop if it was
        real (a no-op drop changes nothing and needs no record)."""
        if self._pending is not None and self.journal is not None:
            self.journal.record_clear()
        self._pending = None

    # -- crash-safe online state ------------------------------------------

    def clear_pending(self) -> None:
        """Replay hook: drop the pending prediction (no journaling —
        replay must not re-record what is being replayed)."""
        self._pending = None

    def restore_pending(self, features: np.ndarray) -> None:
        """Replay hook: reinstate the pending prediction for ``features``.

        The per-expert predicted norms are a pure function of the
        (frozen) experts and the features, so they are recomputed rather
        than persisted.  ``decision_index=-1`` marks that the matching
        :class:`ExpertDecision` predates this process's decision log and
        must not be rewritten when the prediction is scored.
        """
        features = np.asarray(features, dtype=float)
        self._pending = _Pending(
            features=features,
            predicted_norms=tuple(
                e.predict_env_norm(features) for e in self.experts
            ),
            decision_index=-1,
        )

    def export_online_state(self) -> dict:
        """Snapshot of everything online learning has accumulated."""
        export = getattr(self._selector, "export_state", None)
        if export is None:
            raise TypeError(
                f"selector {type(self._selector).__name__} does not "
                "support state export"
            )
        return {
            "selector": export(),
            "pending_features": (
                None if self._pending is None
                else [float(v) for v in self._pending.features]
            ),
            "fallback_count": self.fallback_count,
        }

    def load_online_state(self, state: dict) -> None:
        """Restore a :meth:`export_online_state` snapshot."""
        self._selector.load_state(state["selector"], as_initial=False)
        pending = state.get("pending_features")
        if pending is None:
            self._pending = None
        else:
            self.restore_pending(np.asarray(pending, dtype=float))
        self.fallback_count = int(state.get("fallback_count", 0))
        self.decisions = []

    def best_expert_index(self) -> int:
        """The single expert to fall back on when the mixture is
        distrusted (the serving runtime's tier-1 degradation target).

        Prefers the selector's persisted notion of its favourite expert
        (stable across crash recovery); a selector without one falls
        back to this run's selection counts.
        """
        best = getattr(self._selector, "best_index", None)
        if best is not None:
            return int(best())
        counts = self.selection_counts()
        return max(range(len(counts)), key=counts.__getitem__)

    def select(self, ctx: PolicyContext) -> int:
        features, degenerate = sanitize_features(ctx.feature_vector())
        return self._decide(ctx, features, degenerate, None)

    def _decide(
        self,
        ctx: PolicyContext,
        features: np.ndarray,
        degenerate: bool,
        planned: Optional[tuple],
    ) -> int:
        """The per-decision core shared by :meth:`select` and the batch
        path.  ``planned`` is None (compute per-expert predictions here,
        the scalar path) or a ``(predicted_norms, predicted_threads,
        domain_distances)`` triple of pure-function values precomputed
        by :meth:`plan_batch` — identical floats either way, so the two
        paths are bit-identical by construction.
        """
        observed_norm = ctx.env.norm
        if not math.isfinite(observed_norm):
            # A NaN/inf observation cannot score anything; discard the
            # pending predictions rather than learn from garbage (the
            # paper's last-timestep-only protocol makes this a plain
            # skip, not a backlog).
            self._discard_pending()

        # 1. Score last timestep's predictions and train the selector.
        # Errors combine environment-prediction accuracy with how far
        # each expert's training domain is from the observed state.
        # Experts that learn online (Section 4.1 retrofitting) receive
        # the observation too.
        if self._pending is not None:
            for expert in self.experts:
                record = getattr(expert, "record_observation", None)
                if record is not None:
                    record(self._pending.features, observed_norm)
            domains = self._pending.domain
            if domains is None:
                domains = tuple(
                    expert.domain_distance(self._pending.features)
                    for expert in self.experts
                )
            errors = [
                abs(predicted - observed_norm)
                + self.domain_weight * distance
                for predicted, distance in zip(
                    self._pending.predicted_norms, domains
                )
            ]
            self._selector.update(self._pending.features, errors)
            index = self._pending.decision_index
            # A pending restored from crash recovery points at a
            # decision made before the restart (index -1): the learning
            # above still happens, only the log rewrite is skipped.
            if index >= 0:
                old = self.decisions[index]
                self.decisions[index] = ExpertDecision(
                    time=old.time,
                    loop_name=old.loop_name,
                    expert_index=old.expert_index,
                    threads=old.threads,
                    predicted_norms=old.predicted_norms,
                    predicted_threads=old.predicted_threads,
                    observed_next_norm=observed_norm,
                )

        if degenerate:
            # Safe fallback (see docs/robustness.md): with corrupted
            # features there is no basis for expertise — behave like
            # the OpenMP default of one thread per available processor,
            # learn nothing, and leave no pending prediction to score
            # against the next (possibly also corrupt) observation.
            self.fallback_count += 1
            self._discard_pending()
            return ctx.clamp(ctx.available_processors)

        # 2. Select the expert for the current state.
        choice = self._selector.select(features)

        # 3. Its thread predictor makes the mapping decision.
        if planned is None:
            threads = ctx.snap_to_available(
                self.experts[choice].predict_threads(
                    features, ctx.max_threads
                )
            )
            predicted_norms = tuple(
                e.predict_env_norm(features) for e in self.experts
            )
            predicted_threads = tuple(
                e.predict_threads(features, ctx.max_threads)
                for e in self.experts
            )
            domain = None
        else:
            predicted_norms, predicted_threads, domain = planned
            threads = ctx.snap_to_available(predicted_threads[choice])

        self.decisions.append(ExpertDecision(
            time=ctx.time,
            loop_name=ctx.loop_name,
            expert_index=choice,
            threads=threads,
            predicted_norms=predicted_norms,
            predicted_threads=predicted_threads,
        ))
        self._pending = _Pending(
            features=features,
            predicted_norms=predicted_norms,
            decision_index=len(self.decisions) - 1,
            domain=domain,
        )
        return threads

    # -- batch decision path ----------------------------------------------

    def plan_batch(
        self, feature_rows: np.ndarray, max_threads: np.ndarray
    ) -> Optional[BatchDecisionPlan]:
        """Precompute the pure per-expert work for a ``(B, F)`` batch.

        Returns None when any expert learns online
        (``record_observation``): such experts mutate between decisions,
        so their predictions cannot be hoisted ahead of the sequential
        loop — callers must fall back to the scalar path.
        """
        for expert in self.experts:
            if getattr(expert, "record_observation", None) is not None:
                return None
        matrix, degenerate = sanitize_features_batch(feature_rows)
        count, num_experts = len(matrix), len(self.experts)
        env_norms = np.empty((count, num_experts), dtype=float)
        threads = np.empty((count, num_experts), dtype=np.int64)
        domain = np.empty((count, num_experts), dtype=float)
        for k, expert in enumerate(self.experts):
            env_norms[:, k] = expert.predict_env_norm_batch(matrix)
            threads[:, k] = expert.predict_threads_batch(
                matrix, max_threads
            )
            domain[:, k] = expert.domain_distance_batch(matrix)
        return BatchDecisionPlan(
            features=matrix,
            degenerate=degenerate,
            env_norms=env_norms,
            threads=threads,
            domain=domain,
        )

    def _select_planned(
        self, ctx: PolicyContext, plan: BatchDecisionPlan, row: int
    ) -> int:
        """One decision using row ``row`` of a precomputed plan."""
        planned = (
            tuple(float(v) for v in plan.env_norms[row]),
            tuple(int(v) for v in plan.threads[row]),
            tuple(float(v) for v in plan.domain[row]),
        )
        return self._decide(
            ctx, plan.features[row], bool(plan.degenerate[row]), planned
        )

    def select_batch(self, ctxs: Sequence[PolicyContext]) -> List[int]:
        """Batch :meth:`select` — bit-identical to the sequential loop.

        Hoists the per-expert pure work (feature sanitising, envelope
        clipping, model predictions, domain distances) over the batch
        axis via :meth:`plan_batch`; the stateful learn/select loop then
        runs strictly in request order against the plan.  Falls back to
        the scalar loop for tiny batches (``SCALAR_BATCH_MAX``, the
        kernels idiom) and for online-learning experts.
        """
        ctxs = list(ctxs)
        if len(ctxs) <= SCALAR_BATCH_MAX:
            return [self.select(ctx) for ctx in ctxs]
        rows = np.stack([ctx.feature_vector() for ctx in ctxs])
        limits = np.array(
            [ctx.max_threads for ctx in ctxs], dtype=np.int64
        )
        plan = self.plan_batch(rows, limits)
        if plan is None:
            return [self.select(ctx) for ctx in ctxs]
        return [
            self._select_planned(ctx, plan, row)
            for row, ctx in enumerate(ctxs)
        ]

    # -- analyses ---------------------------------------------------------

    def selection_counts(self) -> List[int]:
        """How often each expert was chosen (Figure 15b)."""
        counts = [0] * len(self.experts)
        for decision in self.decisions:
            counts[decision.expert_index] += 1
        return counts

    def env_prediction_accuracies(
        self, tolerance: float = 0.25
    ) -> List[float]:
        """Per-expert fraction of env predictions within ``tolerance``
        (relative), over this run's scored decisions (Figure 15a)."""
        scored = [d for d in self.decisions
                  if d.observed_next_norm is not None]
        if not scored:
            return [0.0] * len(self.experts)
        accuracies = []
        for k in range(len(self.experts)):
            hits = sum(
                1 for d in scored
                if abs(d.predicted_norms[k] - d.observed_next_norm)
                <= tolerance * max(d.observed_next_norm, 1e-9)
            )
            accuracies.append(hits / len(scored))
        return accuracies

    def mixture_accuracy(self, tolerance: float = 0.25) -> float:
        """Accuracy of the *chosen* expert's env prediction per step."""
        scored = [d for d in self.decisions
                  if d.observed_next_norm is not None]
        if not scored:
            return 0.0
        hits = sum(
            1 for d in scored
            if abs(d.predicted_norms[d.expert_index] - d.observed_next_norm)
            <= tolerance * max(d.observed_next_norm, 1e-9)
        )
        return hits / len(scored)
