"""Analytic exploration + regression policy (the paper's "Analytic").

Models Sridharan, Gupta & Sohi (PLDI'14), the paper's strongest
baseline: "Based on observed instantaneous performance, it executes for
fixed time intervals with two randomly chosen thread numbers.  The new
thread number is then estimated using regression techniques."  It reacts
to *workload* change quickly — the paper concedes "The analytic model
performs well with workload change" — but pays an exploration delay at
every change and "is unable to adjust to the changing hardware
resources" between explorations (the Figure 2 discussion: the stale
decision at t_0).

Implementation: a state machine per run.  EXPLORE(n_a) -> EXPLORE(n_b)
-> EXPLOIT(n*).  Exploiting fits a quadratic rate model
``rate(n) = a*n + b*n^2`` through the recent (n, rate) measurements and
maximises it over [1, P].  Re-exploration triggers when the observed
rate deviates from the rate measured when n* was chosen (the
"instantaneous performance" monitor), or after ``explore_period``
seconds as a backstop.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, List, Optional, Tuple

import numpy as np

from .base import PolicyContext, RegionReport, ThreadPolicy


class _Phase(enum.Enum):
    EXPLORE_A = "explore-a"
    EXPLORE_B = "explore-b"
    EXPLOIT = "exploit"


class AnalyticPolicy(ThreadPolicy):
    """Reactive exploration with regression-based exploitation."""

    name = "analytic"

    def __init__(
        self,
        explore_window: float = 0.8,
        explore_period: float = 15.0,
        deviation: float = 0.25,
        seed: int = 7,
    ):
        if explore_window <= 0 or explore_period <= 0:
            raise ValueError("windows must be positive")
        if not 0.0 < deviation < 1.0:
            raise ValueError("deviation must be in (0, 1)")
        self._explore_window = explore_window
        self._explore_period = explore_period
        self._deviation = deviation
        self._seed = seed
        self.reset()

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)
        self._phase = _Phase.EXPLORE_A
        self._phase_started: Optional[float] = None
        self._probe_threads: Tuple[int, int] = (0, 0)
        self._measurements: Deque[Tuple[int, float]] = deque(maxlen=24)
        self._loop_scale: dict = {}  # per-loop rate normaliser (EMA)
        self._chosen: Optional[int] = None
        self._chosen_rates: dict = {}  # per-loop reference rates
        self._last_explore_end = 0.0

    def _draw_probes(self, processors: int) -> Tuple[int, int]:
        """Two random probe thread counts in [P/4, P].

        The lower bound keeps exploration from single-thread probes
        whose cost would never be paid back (the PLDI'14 system bounds
        its search space the same way).
        """
        high = max(2, processors)
        low = max(1, processors // 4)
        if low >= high:
            return high, max(1, high - 1)
        a = int(self._rng.integers(low, high + 1))
        b = int(self._rng.integers(low, high + 1))
        while b == a:
            b = int(self._rng.integers(low, high + 1))
        return a, b

    def _begin_exploration(self, ctx: PolicyContext) -> None:
        self._probe_threads = self._draw_probes(ctx.available_processors)
        self._phase = _Phase.EXPLORE_A
        self._phase_started = ctx.time

    def select(self, ctx: PolicyContext) -> int:
        now = ctx.time
        if self._phase_started is None:
            self._begin_exploration(ctx)

        if self._phase is _Phase.EXPLORE_A:
            if now - self._phase_started >= self._explore_window:
                self._phase = _Phase.EXPLORE_B
                self._phase_started = now
            else:
                return ctx.clamp(self._probe_threads[0])
        if self._phase is _Phase.EXPLORE_B:
            if now - self._phase_started >= self._explore_window:
                self._exploit(ctx, now)
            else:
                return ctx.clamp(self._probe_threads[1])
        # EXPLOIT: backstop periodic re-exploration.
        if now - self._last_explore_end >= self._explore_period:
            self._begin_exploration(ctx)
            return ctx.clamp(self._probe_threads[0])
        if self._chosen is None:
            self._chosen = max(1, ctx.available_processors // 2)
        return ctx.clamp(self._chosen)

    def _exploit(self, ctx: PolicyContext, now: float) -> None:
        self._chosen = self._fit_and_choose(ctx)
        self._chosen_rates = {}  # re-anchored from exploit reports
        self._phase = _Phase.EXPLOIT
        self._phase_started = now
        self._last_explore_end = now

    def observe(self, report: RegionReport) -> None:
        # Rates from different loops are not directly comparable (each
        # loop has its own intrinsic speed), so measurements are stored
        # normalised by a per-loop running scale.
        scale = self._loop_scale.get(report.loop_name)
        if scale is None:
            scale = report.rate if report.rate > 0 else 1.0
        else:
            scale = 0.9 * scale + 0.1 * report.rate
        self._loop_scale[report.loop_name] = scale
        if scale > 0:
            self._measurements.append(
                (report.threads, report.rate / scale)
            )
        if self._phase is _Phase.EXPLOIT and self._chosen is not None:
            if report.threads != self._chosen:
                return
            # Rates are only comparable within the same loop: different
            # regions of a program run at very different speeds.
            reference = self._chosen_rates.get(report.loop_name)
            if reference is None:
                self._chosen_rates[report.loop_name] = report.rate
                return
            # The instantaneous-performance monitor: a big deviation
            # from the rate we signed up for means the environment
            # changed — schedule re-exploration by expiring the period.
            low = (1.0 - self._deviation) * reference
            high = (1.0 + self._deviation) * reference
            if not low <= report.rate <= high:
                self._last_explore_end = -float("inf")
            else:
                # Slowly track drift while stable.
                self._chosen_rates[report.loop_name] = (
                    0.8 * reference + 0.2 * report.rate
                )

    def _fit_and_choose(self, ctx: PolicyContext) -> int:
        """Quadratic regression over the recent (n, rate) measurements.

        rate(n) = a*n + b*n^2 (rate(0) = 0).  With concave measurements
        the maximiser is interior; otherwise take the best measured n.
        """
        points = list(self._measurements)
        processors = ctx.available_processors
        distinct = {n for n, _ in points}
        if len(distinct) < 2:
            return max(1, processors // 2)
        ns = np.array([n for n, _ in points], dtype=float)
        rates = np.array([r for _, r in points], dtype=float)
        design = np.stack([ns, ns * ns], axis=1)
        coeffs, *_ = np.linalg.lstsq(design, rates, rcond=None)
        a, b = float(coeffs[0]), float(coeffs[1])
        if b >= 0:
            best_measured = max(points, key=lambda p: p[1])[0]
            return int(max(1, min(processors, best_measured)))
        peak = -a / (2.0 * b)
        return int(max(1, min(processors, round(peak))))
