"""Offline expert training (Sections 5.1-5.2).

Protocol (5.2.1): "The training experiments consisted of one target and
one workload from NAS suite where each program runs until the other
finishes.  These runs are repeated by varying the number of threads for
both programs. ... We capture features f = [c, e] ... and record the
number of threads n that leads to best performance."

Partitioning (5.1): "We first separate the training programs into 2
sets: those that scale well and those that do not.  We then built an
expert for each set on 2 different platforms: a 12 core machine and a
32 core machine, giving 4 experts in all.  We defined a program as being
scalable if it achieves at least P/4 speedup where P is the number of
processors."

Only NAS programs are used for training; SpecOMP and Parsec programs
appear exclusively in evaluation.  Section 8.4 builds 8 experts "by
further splitting the training programs based on scaling behavior";
we split each 2x2 slice at its median measured speedup.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..machine.availability import StaticAvailability
from ..machine.machine import SimMachine
from ..machine.topology import TWELVE_CORE, Topology, XEON_L7555
from ..programs import registry
from ..programs.model import ProgramModel
from .expert import Expert, train_expert
from .features import FeatureSample, env_norm_of
from .policies.fixed import FixedPolicy, RecordingPolicy

def _engine():
    """Lazy import to avoid a package-level cycle (runtime imports the
    policy base classes from core)."""
    from ..runtime.engine import CoExecutionEngine, JobSpec
    return CoExecutionEngine, JobSpec


_PLATFORMS: Dict[str, Topology] = {
    TWELVE_CORE.name: TWELVE_CORE,
    XEON_L7555.name: XEON_L7555,
}


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of the offline training pipeline."""

    platform_names: Tuple[str, ...] = (TWELVE_CORE.name, XEON_L7555.name)
    target_names: Tuple[str, ...] = (
        "bt", "cg", "ep", "ft", "is", "lu", "mg", "sp",
    )
    workload_names: Tuple[str, ...] = ("cg", "ep")
    #: Multi-program workloads ("one workload" in the sense of Table 3:
    #: a *set* of co-running benchmarks).  These extend the training
    #: distribution to the contention levels the large evaluation
    #: workloads produce; without them every model would extrapolate.
    workload_bundles: Tuple[Tuple[str, ...], ...] = (
        (),  # isolated runs: the static scenario must be in-distribution
        ("is", "cg", "ft"),
        ("is", "cg", "ft", "mg", "bt", "sp"),
    )
    #: Workload thread counts as fractions of the platform's cores.
    workload_fractions: Tuple[float, ...] = (0.3, 0.8)
    #: Shrink factor on program iteration counts for training runs.
    iterations_scale: float = 0.1
    dt: float = 0.1
    seed: int = 42
    #: Cap on harvested samples per training run (subsampled evenly).
    max_samples_per_run: int = 12
    #: Available-processor levels (fractions of the platform's cores).
    #: Each training run executes at one *fixed* level, so the best-n
    #: label is specific to a processor count; sweeping levels across
    #: runs is what teaches the thread models their processors slope.
    availability_levels: Tuple[float, ...] = (0.25, 0.5, 1.0)

    def platforms(self) -> List[Topology]:
        return [_PLATFORMS[name] for name in self.platform_names]


def thread_candidates(processors: int) -> List[int]:
    """Candidate thread counts: powers of two up to P, plus P."""
    if processors < 1:
        raise ValueError("processors must be >= 1")
    candidates = []
    n = 1
    while n < processors:
        candidates.append(n)
        n *= 2
    candidates.append(processors)
    return candidates


def scale_program(program: ProgramModel, factor: float) -> ProgramModel:
    """A copy of ``program`` with iteration count scaled by ``factor``."""
    if factor <= 0:
        raise ValueError("factor must be positive")
    iterations = max(4, int(round(program.iterations * factor)))
    return replace(program, iterations=iterations)


@dataclass(frozen=True)
class ScalabilityRecord:
    """Measured isolated scaling of one program on one platform."""

    program: str
    platform: str
    speedup_at_p: float
    processors: int

    @property
    def scalable(self) -> bool:
        """The paper's criterion: speedup >= P/4."""
        return self.speedup_at_p >= self.processors / 4.0


def _scalability_request(
    name: str, platform: Topology, threads: int, config: TrainingConfig
):
    """One isolated static run of the scalability measurement."""
    from ..exec import PolicySpec, RunRequest

    return RunRequest(
        target=name,
        policy=PolicySpec.fixed(threads),
        scenario=None,
        topology=platform,
        iterations_scale=config.iterations_scale,
        dt=config.dt,
        processors=platform.cores,
    )


def measure_scalability(
    program: ProgramModel,
    platform: Topology,
    config: TrainingConfig,
    executor=None,
) -> ScalabilityRecord:
    """Isolated static runs at 1 and P threads -> speedup at P."""
    from ..exec import Executor

    try:
        registered = registry.get(program.name) is program
    except KeyError:
        registered = False
    if not registered:
        # Ad-hoc program models cannot be named in a RunRequest; run
        # them directly (serial, unmemoised) with identical physics.
        return _measure_scalability_direct(program, platform, config)
    if executor is None:
        executor = Executor()
    summaries = executor.run([
        _scalability_request(program.name, platform, threads, config)
        for threads in (1, platform.cores)
    ])
    return ScalabilityRecord(
        program=program.name,
        platform=platform.name,
        speedup_at_p=summaries[0].target_time / summaries[1].target_time,
        processors=platform.cores,
    )


def _measure_scalability_direct(
    program: ProgramModel, platform: Topology, config: TrainingConfig
) -> ScalabilityRecord:
    scaled = scale_program(program, config.iterations_scale)
    times = {}
    for threads in (1, platform.cores):
        machine = SimMachine(
            topology=platform,
            availability=StaticAvailability(platform.cores),
        )
        CoExecutionEngine, JobSpec = _engine()
        engine = CoExecutionEngine(
            machine=machine,
            jobs=[JobSpec(program=scaled, policy=FixedPolicy(threads),
                          job_id="target", is_target=True)],
            dt=config.dt,
        )
        result = engine.run()
        if result.target_time is None:
            raise RuntimeError(
                f"scalability run timed out: {program.name} on "
                f"{platform.name} with {threads} threads"
            )
        times[threads] = result.target_time
    return ScalabilityRecord(
        program=program.name,
        platform=platform.name,
        speedup_at_p=times[1] / times[platform.cores],
        processors=platform.cores,
    )


def measure_scalability_grid(
    config: TrainingConfig, executor=None
) -> List[ScalabilityRecord]:
    """Scalability of every training target on every platform, batched
    through one executor call so the runs parallelise together."""
    from ..exec import Executor

    if executor is None:
        executor = Executor()
    grid = [
        (name, platform)
        for platform in config.platforms()
        for name in config.target_names
    ]
    summaries = executor.run([
        _scalability_request(name, platform, threads, config)
        for name, platform in grid
        for threads in (1, platform.cores)
    ])
    records = []
    for index, (name, platform) in enumerate(grid):
        serial, parallel = summaries[2 * index], summaries[2 * index + 1]
        records.append(ScalabilityRecord(
            program=name,
            platform=platform.name,
            speedup_at_p=serial.target_time / parallel.target_time,
            processors=platform.cores,
        ))
    return records


def _training_request(
    target_name: str,
    workload_names: Tuple[str, ...],
    platform: Topology,
    workload_threads: int,
    target_threads: int,
    config: TrainingConfig,
    processors: int,
):
    """One training run at a fixed processor level, as a request.

    ``record=True`` wraps the fixed target policy in a
    :class:`RecordingPolicy` so the harvested feature vectors come back
    in the run summary.
    """
    from ..exec import PolicySpec, RunRequest, WorkloadSpec

    workload = None
    if workload_names:
        workload = WorkloadSpec(
            program_names=tuple(workload_names),
            policy=PolicySpec.fixed(workload_threads),
        )
    return RunRequest(
        target=target_name,
        policy=PolicySpec.fixed(target_threads),
        scenario=None,
        workload=workload,
        topology=platform,
        iterations_scale=config.iterations_scale,
        dt=config.dt,
        max_time=7200.0,
        processors=processors,
        record=True,
    )


def harvest_samples(
    records: Sequence,
    best_threads: int,
    speedup: float,
    program: str,
    platform: str,
    max_samples: int,
) -> List[FeatureSample]:
    """Turn a recorded best-n run into labelled training samples.

    ``records`` is the selection log of the best run — any sequence of
    objects with ``features`` (array-like feature vectors).  Consecutive
    records give (f_t, ‖e_{t+1}‖) pairs; each is labelled with the run's
    best thread count and achieved speedup.
    """
    records = list(records)
    if len(records) < 2:
        return []
    pairs = list(zip(records[:-1], records[1:]))
    if len(pairs) > max_samples:
        stride = len(pairs) / max_samples
        pairs = [pairs[int(i * stride)] for i in range(max_samples)]
    samples = []
    for current, nxt in pairs:
        samples.append(FeatureSample(
            features=np.asarray(current.features, dtype=float),
            best_threads=best_threads,
            speedup=speedup,
            next_env_norm=env_norm_of(
                np.asarray(nxt.features, dtype=float)
            ),
            program=program,
            platform=platform,
        ))
    return samples


def _training_grid(
    config: TrainingConfig,
) -> List[Tuple[str, Topology, Tuple[str, ...], int, int, List[int]]]:
    """The Section 5.2.1 sweep as a flat list of run configurations."""
    workload_options: List[Tuple[str, ...]] = [
        (name,) for name in config.workload_names
    ] + [tuple(bundle) for bundle in config.workload_bundles]
    grid = []
    for platform in config.platforms():
        for target_name in config.target_names:
            for workload_names in workload_options:
                # A single workload program must differ from the target;
                # inside multi-program bundles a copy of the target may
                # co-run (as the Table 3 large sets do in evaluation).
                if len(workload_names) == 1 and target_name in workload_names:
                    continue
                # An empty workload is one isolated run; sweeping the
                # (meaningless) workload thread count would duplicate it.
                fractions = (
                    config.workload_fractions if workload_names else (1.0,)
                )
                for fraction in fractions:
                    wn = max(1, int(round(platform.cores * fraction)))
                    for level in config.availability_levels:
                        processors = max(1, int(round(
                            platform.cores * level
                        )))
                        grid.append((
                            target_name, platform, workload_names, wn,
                            processors, thread_candidates(platform.cores),
                        ))
    return grid


def generate_training_data(
    config: TrainingConfig = TrainingConfig(),
    executor=None,
    jobs: int = None,
) -> List[FeatureSample]:
    """Run the full Section 5.2.1 protocol; returns labelled samples.

    The sweep — platforms x targets x workloads x thread counts x
    availability levels — is one flat batch of independent runs, fanned
    out through :class:`repro.exec.Executor` (``jobs``/``REPRO_JOBS``
    control parallelism; results are identical at any worker count).
    """
    from ..exec import Executor

    if executor is None:
        executor = Executor(jobs=jobs)
    grid = _training_grid(config)
    requests = [
        _training_request(
            target_name, workload_names, platform, wn, n, config,
            processors,
        )
        for target_name, platform, workload_names, wn, processors,
            candidates in grid
        for n in candidates
    ]
    summaries = executor.run(requests)

    samples: List[FeatureSample] = []
    cursor = 0
    for target_name, platform, workload_names, wn, processors, \
            candidates in grid:
        runs = summaries[cursor:cursor + len(candidates)]
        cursor += len(candidates)
        best_index = min(
            range(len(candidates)), key=lambda i: runs[i].target_time
        )
        best_n = candidates[best_index]
        best = runs[best_index]
        serial = scale_program(
            registry.get(target_name), config.iterations_scale
        ).serial_time()
        samples.extend(harvest_samples(
            best.records,
            best_threads=best_n,
            speedup=serial / best.target_time,
            program=target_name,
            platform=platform.name,
            max_samples=config.max_samples_per_run,
        ))
    if not samples:
        raise RuntimeError("training produced no samples")
    return samples


@dataclass(frozen=True)
class ExpertBundle:
    """Trained experts plus the provenance needed by the analyses."""

    experts: Tuple[Expert, ...]
    scalability: Tuple[ScalabilityRecord, ...]
    samples_per_expert: Dict[str, int]
    config: TrainingConfig

    def expert(self, name: str) -> Expert:
        for expert in self.experts:
            if expert.name == name:
                return expert
        raise KeyError(f"no expert named {name!r}")

    def scalability_of(self, program: str, platform: str) -> ScalabilityRecord:
        for record in self.scalability:
            if record.program == program and record.platform == platform:
                return record
        raise KeyError(f"no scalability record for {program}@{platform}")


def partition_samples(
    samples: Sequence[FeatureSample],
    scalability: Sequence[ScalabilityRecord],
    granularity: int,
) -> Dict[str, List[FeatureSample]]:
    """Split training samples into expert slices (Figure 5).

    ``granularity`` 4 gives the paper's 2x2 split (scalable? x platform);
    8 additionally splits each slice at its median measured speedup;
    1 pools everything (the monolithic aggregate model of Section 7.7).
    """
    if granularity not in (1, 2, 4, 8):
        raise ValueError("granularity must be 1, 2, 4 or 8")
    if granularity == 1:
        return {"E1": list(samples)}

    scal = {(r.program, r.platform): r for r in scalability}

    def slice_key(sample: FeatureSample) -> str:
        record = scal[(sample.program, sample.platform)]
        if granularity == 2:
            return "scalable" if record.scalable else "nonscalable"
        key = (
            f"{'scalable' if record.scalable else 'nonscalable'}"
            f"@{sample.platform}"
        )
        if granularity == 8:
            # Median split of speedups within the 2x2 slice.
            peers = [
                r.speedup_at_p for r in scalability
                if r.platform == sample.platform
                and r.scalable == record.scalable
            ]
            midpoint = float(np.median(peers))
            tier = "hi" if record.speedup_at_p >= midpoint else "lo"
            key = f"{key}:{tier}"
        return key

    slices: Dict[str, List[FeatureSample]] = {}
    for sample in samples:
        slices.setdefault(slice_key(sample), []).append(sample)
    # Drop slices too small to fit a 10-d model reliably.
    return {k: v for k, v in slices.items() if len(v) >= 15}


#: Canonical expert naming order for the paper's 4-expert configuration:
#: E1/E2 on the 12-core platform, E3/E4 on the 32-core platform,
#: scalable before non-scalable (matching Figure 5's layout).
_CANONICAL_ORDER = (
    f"scalable@{TWELVE_CORE.name}",
    f"nonscalable@{TWELVE_CORE.name}",
    f"scalable@{XEON_L7555.name}",
    f"nonscalable@{XEON_L7555.name}",
)


def build_experts(
    config: TrainingConfig = TrainingConfig(),
    granularity: int = 4,
    samples: Sequence[FeatureSample] = None,
    scalability: Sequence[ScalabilityRecord] = None,
) -> ExpertBundle:
    """Full pipeline: train data -> partition -> fit experts.

    ``samples``/``scalability`` may be passed in to reuse one expensive
    data-generation run across granularities (as Section 8 does: "for
    the same amount of training data").
    """
    if samples is None:
        samples = generate_training_data(config)
    if scalability is None:
        scalability = measure_scalability_grid(config)
    slices = partition_samples(samples, scalability, granularity)
    if not slices:
        raise RuntimeError("no expert slice had enough training samples")

    def order(key: str) -> tuple:
        try:
            return (0, _CANONICAL_ORDER.index(key))
        except ValueError:
            return (1, key)

    experts = []
    counts = {}
    for index, key in enumerate(sorted(slices, key=order), start=1):
        slice_samples = slices[key]
        name = f"E{index}"
        experts.append(train_expert(
            name=name, samples=slice_samples, provenance=key,
        ))
        counts[name] = len(slice_samples)
    return ExpertBundle(
        experts=tuple(experts),
        scalability=tuple(scalability),
        samples_per_expert=counts,
        config=config,
    )


_BUNDLE_CACHE: Dict[Tuple[TrainingConfig, int], ExpertBundle] = {}
_DATA_CACHE: Dict[TrainingConfig, tuple] = {}

#: Bump when feature semantics change (e.g. what the environment sample
#: includes) so cached training artefacts are regenerated.
_PIPELINE_VERSION = 4


def _simulator_fingerprint() -> str:
    """Hash of the calibration constants baked into training data.

    Cached training artefacts are invalid whenever the simulator's
    physics change, so those constants are part of the cache key.
    """
    from ..runtime import engine as engine_mod
    from ..sched.scheduler import ProportionalShareScheduler

    from .expert import DEFAULT_RIDGE

    sched = ProportionalShareScheduler(XEON_L7555)
    parts = (
        _PIPELINE_VERSION,
        DEFAULT_RIDGE,
        engine_mod.SPIN_WASTE_COEFF,
        engine_mod.MAX_SPIN_WASTE,
        engine_mod.SERIAL_MEMORY_INTENSITY,
        sched.switch_overhead,
        sched.memory_overhead,
        round(sched.traffic_capacity, 6),
    )
    return hashlib.sha256(repr(parts).encode()).hexdigest()[:16]


def simulator_fingerprint() -> str:
    """Public alias of the calibration fingerprint (run-cache keys)."""
    return _simulator_fingerprint()


def _cache_path(config: TrainingConfig, granularity: int) -> Path:
    key = hashlib.sha256(
        repr((config, granularity, _simulator_fingerprint())).encode()
    ).hexdigest()[:24]
    root = os.environ.get("REPRO_CACHE_DIR")
    base = Path(root) if root else Path.home() / ".cache" / "repro"
    return base / f"experts-{key}.pkl"


def default_experts(
    config: TrainingConfig = TrainingConfig(),
    granularity: int = 4,
    use_disk_cache: bool = True,
) -> ExpertBundle:
    """Cached expert bundles (training is a one-off cost, Section 5.2.1).

    Results are memoised in-process and, by default, on disk under
    ``~/.cache/repro`` (override with ``REPRO_CACHE_DIR``).  The disk key
    includes the simulator calibration constants, so stale artefacts are
    never reused after the physics change.
    """
    key = (config, granularity)
    if key in _BUNDLE_CACHE:
        return _BUNDLE_CACHE[key]

    path = _cache_path(config, granularity)
    if use_disk_cache and path.exists():
        with open(path, "rb") as fh:
            bundle = pickle.load(fh)
        _BUNDLE_CACHE[key] = bundle
        return bundle

    samples, scalability = training_dataset(config, use_disk_cache)
    bundle = build_experts(
        config, granularity, samples=samples, scalability=scalability,
    )
    _BUNDLE_CACHE[key] = bundle
    if use_disk_cache:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "wb") as fh:
            pickle.dump(bundle, fh)
    return bundle


def pretrain_selector_state(
    experts: Sequence[Expert],
    samples: Sequence[FeatureSample],
    epochs: int = 3,
    learning_rate: float = 0.5,
    margin: float = 0.1,
    domain_weight: float = 5.0,
    seed: int = 0,
) -> dict:
    """Pre-seed the expert selector on the offline training data.

    Every expert's environment-prediction error on every training sample
    is computable offline, so the hyperplane partition can be fitted
    before deployment.  The runtime selector still adapts online (the
    paper's Section 5.3 updates); pre-seeding replaces the blind
    even-initialisation with an informed one.  This substitutes for the
    density of decision points a real loop-level runtime enjoys: our
    simulated programs present ~10^2 mapping decisions per run where a
    real OpenMP code presents ~10^4.
    """
    from .features import NUM_FEATURES
    from .selector import HyperplaneSelector

    experts = list(experts)
    samples = list(samples)
    if not experts or not samples:
        raise ValueError("need experts and samples to pretrain")
    selector = HyperplaneSelector(
        num_experts=len(experts),
        dim=NUM_FEATURES,
        learning_rate=learning_rate,
        margin=margin,
    )
    rng = np.random.default_rng(seed)
    order = np.arange(len(samples))
    for _ in range(epochs):
        rng.shuffle(order)
        for index in order:
            sample = samples[index]
            errors = [
                abs(e.predict_env_norm(sample.features)
                    - sample.next_env_norm)
                + domain_weight * e.domain_distance(sample.features)
                for e in experts
            ]
            selector.update(sample.features, errors)
    return selector.export_state()


def training_dataset(
    config: TrainingConfig = TrainingConfig(),
    use_disk_cache: bool = True,
) -> Tuple[List[FeatureSample], List[ScalabilityRecord]]:
    """The shared (samples, scalability) pair, memoised + disk-cached."""
    if config not in _DATA_CACHE:
        path = _cache_path(config, granularity=0)  # 0 marks raw data
        if use_disk_cache and path.exists():
            with open(path, "rb") as fh:
                _DATA_CACHE[config] = pickle.load(fh)
        else:
            samples = generate_training_data(config)
            scalability = measure_scalability_grid(config)
            _DATA_CACHE[config] = (samples, scalability)
            if use_disk_cache:
                path.parent.mkdir(parents=True, exist_ok=True)
                with open(path, "wb") as fh:
                    pickle.dump(_DATA_CACHE[config], fh)
    samples, scalability = _DATA_CACHE[config]
    return list(samples), list(scalability)
