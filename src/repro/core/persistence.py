"""JSON persistence for trained experts.

Trained experts are small (two 10-weight linear models plus an
envelope), so they serialize naturally to JSON — convenient for
shipping a trained policy to another machine, versioning it, or
inspecting the Table 1 weights outside Python.  The pickle-based disk
cache in :mod:`repro.core.training` is an internal speed-up; this
module is the *public* import/export format.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import List, Union

import numpy as np

from .expert import Expert
from .features import FEATURE_NAMES
from .regression import LinearModel
from .training import ExpertBundle, ScalabilityRecord, TrainingConfig

#: Format version written into every file; bump on breaking changes.
FORMAT_VERSION = 1


def _model_to_dict(model: LinearModel) -> dict:
    return {
        "weights": [float(w) for w in model.weights],
        "intercept": float(model.intercept),
    }


def _model_from_dict(data: dict) -> LinearModel:
    return LinearModel(
        weights=np.asarray(data["weights"], dtype=float),
        intercept=float(data["intercept"]),
        feature_names=FEATURE_NAMES,
    )


def expert_to_dict(expert: Expert) -> dict:
    """Serialize one expert."""
    return {
        "name": expert.name,
        "provenance": expert.provenance,
        "thread_model": _model_to_dict(expert.thread_model),
        "env_model": _model_to_dict(expert.env_model),
        "feature_low": (
            None if expert.feature_low is None
            else [float(v) for v in expert.feature_low]
        ),
        "feature_high": (
            None if expert.feature_high is None
            else [float(v) for v in expert.feature_high]
        ),
    }


def expert_from_dict(data: dict) -> Expert:
    """Deserialize one expert."""
    return Expert(
        name=data["name"],
        provenance=data.get("provenance", ""),
        thread_model=_model_from_dict(data["thread_model"]),
        env_model=_model_from_dict(data["env_model"]),
        feature_low=(
            None if data.get("feature_low") is None
            else np.asarray(data["feature_low"], dtype=float)
        ),
        feature_high=(
            None if data.get("feature_high") is None
            else np.asarray(data["feature_high"], dtype=float)
        ),
    )


def bundle_to_dict(bundle: ExpertBundle) -> dict:
    """Serialize a whole bundle (experts + provenance)."""
    return {
        "format_version": FORMAT_VERSION,
        "feature_names": list(FEATURE_NAMES),
        "experts": [expert_to_dict(e) for e in bundle.experts],
        "scalability": [asdict(r) for r in bundle.scalability],
        "samples_per_expert": dict(bundle.samples_per_expert),
        "config": asdict(bundle.config),
    }


def bundle_from_dict(data: dict) -> ExpertBundle:
    """Deserialize a bundle."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported bundle format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    if data.get("feature_names") != list(FEATURE_NAMES):
        raise ValueError(
            "bundle was trained with a different feature vector"
        )
    config_data = dict(data["config"])
    # JSON turns tuples into lists; restore the hashable config.
    for key, value in config_data.items():
        if isinstance(value, list):
            config_data[key] = tuple(
                tuple(v) if isinstance(v, list) else v for v in value
            )
    return ExpertBundle(
        experts=tuple(
            expert_from_dict(e) for e in data["experts"]
        ),
        scalability=tuple(
            ScalabilityRecord(**r) for r in data["scalability"]
        ),
        samples_per_expert=dict(data["samples_per_expert"]),
        config=TrainingConfig(**config_data),
    )


def save_bundle(bundle: ExpertBundle,
                path: Union[str, Path]) -> Path:
    """Write a bundle to a JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(bundle_to_dict(bundle), fh, indent=2)
    return path


def load_bundle(path: Union[str, Path]) -> ExpertBundle:
    """Read a bundle from a JSON file."""
    with open(path) as fh:
        return bundle_from_dict(json.load(fh))
