"""JSON persistence for trained experts and online selector state.

Trained experts are small (two 10-weight linear models plus an
envelope), so they serialize naturally to JSON — convenient for
shipping a trained policy to another machine, versioning it, or
inspecting the Table 1 weights outside Python.  The pickle-based disk
cache in :mod:`repro.core.training` is an internal speed-up; this
module is the *public* import/export format.

Beyond the offline bundles, this module supplies the crash-safety
primitives the serving runtime (:mod:`repro.serve`) builds on:

* :func:`to_jsonable` — lossless conversion of selector state dicts
  (numpy arrays included) into JSON-serialisable structures.  Python's
  ``repr``-based float formatting round-trips IEEE-754 doubles exactly,
  so a state written through JSON restores *bit-identical* hyperplanes;
* :func:`payload_checksum` / :func:`dump_checked_json` /
  :func:`load_checked_json` — checksummed, atomically-written JSON
  documents.  A torn or corrupted file fails the checksum and raises
  :class:`ChecksumError` instead of silently loading garbage;
* :func:`resolve_quarantine_keep` / :func:`prune_quarantine` — bounded
  retention for quarantine directories (corrupt snapshots, journal
  tails, cache entries), so evidence of corruption survives for
  post-mortem without accumulating forever.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from dataclasses import asdict
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from .expert import Expert
from .features import FEATURE_NAMES
from .regression import LinearModel
from .training import ExpertBundle, ScalabilityRecord, TrainingConfig

#: Format version written into every file; bump on breaking changes.
FORMAT_VERSION = 1

#: Quarantined files kept per directory unless ``REPRO_QUARANTINE_KEEP``
#: or an explicit argument overrides it.
DEFAULT_QUARANTINE_KEEP = 8


def _model_to_dict(model: LinearModel) -> dict:
    return {
        "weights": [float(w) for w in model.weights],
        "intercept": float(model.intercept),
    }


def _model_from_dict(data: dict) -> LinearModel:
    return LinearModel(
        weights=np.asarray(data["weights"], dtype=float),
        intercept=float(data["intercept"]),
        feature_names=FEATURE_NAMES,
    )


def expert_to_dict(expert: Expert) -> dict:
    """Serialize one expert."""
    return {
        "name": expert.name,
        "provenance": expert.provenance,
        "thread_model": _model_to_dict(expert.thread_model),
        "env_model": _model_to_dict(expert.env_model),
        "feature_low": (
            None if expert.feature_low is None
            else [float(v) for v in expert.feature_low]
        ),
        "feature_high": (
            None if expert.feature_high is None
            else [float(v) for v in expert.feature_high]
        ),
    }


def expert_from_dict(data: dict) -> Expert:
    """Deserialize one expert."""
    return Expert(
        name=data["name"],
        provenance=data.get("provenance", ""),
        thread_model=_model_from_dict(data["thread_model"]),
        env_model=_model_from_dict(data["env_model"]),
        feature_low=(
            None if data.get("feature_low") is None
            else np.asarray(data["feature_low"], dtype=float)
        ),
        feature_high=(
            None if data.get("feature_high") is None
            else np.asarray(data["feature_high"], dtype=float)
        ),
    )


def bundle_to_dict(bundle: ExpertBundle) -> dict:
    """Serialize a whole bundle (experts + provenance)."""
    return {
        "format_version": FORMAT_VERSION,
        "feature_names": list(FEATURE_NAMES),
        "experts": [expert_to_dict(e) for e in bundle.experts],
        "scalability": [asdict(r) for r in bundle.scalability],
        "samples_per_expert": dict(bundle.samples_per_expert),
        "config": asdict(bundle.config),
    }


def bundle_from_dict(data: dict) -> ExpertBundle:
    """Deserialize a bundle."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported bundle format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    if data.get("feature_names") != list(FEATURE_NAMES):
        raise ValueError(
            "bundle was trained with a different feature vector"
        )
    config_data = dict(data["config"])
    # JSON turns tuples into lists; restore the hashable config.
    for key, value in config_data.items():
        if isinstance(value, list):
            config_data[key] = tuple(
                tuple(v) if isinstance(v, list) else v for v in value
            )
    return ExpertBundle(
        experts=tuple(
            expert_from_dict(e) for e in data["experts"]
        ),
        scalability=tuple(
            ScalabilityRecord(**r) for r in data["scalability"]
        ),
        samples_per_expert=dict(data["samples_per_expert"]),
        config=TrainingConfig(**config_data),
    )


def save_bundle(bundle: ExpertBundle,
                path: Union[str, Path]) -> Path:
    """Write a bundle to a JSON file; returns the path.

    Written atomically (temp file + ``os.replace``) with sorted keys:
    a crash mid-export can never tear a half-written bundle under the
    real name, and the same bundle always serializes to the same bytes.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(bundle_to_dict(bundle), fh, indent=2,
                      sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_bundle(path: Union[str, Path]) -> ExpertBundle:
    """Read a bundle from a JSON file."""
    with open(path) as fh:
        return bundle_from_dict(json.load(fh))


# -- checksummed documents (crash-safe online state) -----------------------


class ChecksumError(ValueError):
    """A checksummed document is torn, truncated or corrupted."""


def to_jsonable(value):
    """Recursively convert ``value`` into JSON-serialisable structures.

    numpy arrays become (nested) lists of Python floats, numpy scalars
    become their Python equivalents.  Floats survive the JSON round
    trip bit-identically (``repr`` emits the shortest string that
    parses back to the same double), which is what lets a restored
    selector reproduce the exact hyperplanes it crashed with.
    """
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    return value


def payload_checksum(payload) -> str:
    """Checksum of a JSON-able payload (canonical form, sha256/16).

    ``allow_nan=False``: non-finite values have no canonical JSON
    form, and nothing legitimately persisted here may contain one —
    failing loudly at write time beats a document that cannot verify.
    """
    canonical = json.dumps(
        to_jsonable(payload), sort_keys=True, separators=(",", ":"),
        allow_nan=False,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def dump_checked_json(payload, path: Union[str, Path]) -> Path:
    """Atomically write ``payload`` with an embedded checksum.

    Temp file + ``os.replace``: a crash mid-write can leave a stray
    temp file, never a half-written document under the real name.
    """
    path = Path(path)
    payload = to_jsonable(payload)
    document = {
        "format_version": FORMAT_VERSION,
        "checksum": payload_checksum(payload),
        "payload": payload,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(document, fh, allow_nan=False, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_checked_json(path: Union[str, Path]):
    """Load a checksummed document; raises :class:`ChecksumError` when
    the file is malformed or its payload fails verification."""
    path = Path(path)
    try:
        with open(path) as fh:
            document = json.load(fh)
    except (OSError, ValueError) as error:
        raise ChecksumError(f"{path}: unreadable ({error})") from error
    if not isinstance(document, dict) or "payload" not in document:
        raise ChecksumError(f"{path}: not a checksummed document")
    expected = document.get("checksum")
    actual = payload_checksum(document["payload"])
    if expected != actual:
        raise ChecksumError(
            f"{path}: checksum mismatch "
            f"(expected {expected!r}, computed {actual!r})"
        )
    return document["payload"]


def atomic_copy(source: Union[str, Path],
                destination: Union[str, Path]) -> Path:
    """Copy a file so the destination is never observably partial.

    Temp file + ``os.replace`` in the destination directory — the same
    discipline as :func:`dump_checked_json`, but byte-oriented so it
    also ships files that are *legitimately* torn (a crashed server's
    journal tail, which replay quarantines on the receiving side).
    """
    source = Path(source)
    destination = Path(destination)
    destination.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=destination.parent, prefix=destination.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as out, open(source, "rb") as src:
            while True:
                chunk = src.read(1 << 20)
                if not chunk:
                    break
                out.write(chunk)
        os.replace(tmp, destination)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return destination


def move_aside(path: Union[str, Path],
               quarantine_dir: Union[str, Path],
               label: str = "") -> Optional[Path]:
    """Atomically move a file *or directory* into a quarantine dir.

    The serving fleet's migration protocol retires superseded state
    (a stream's old home after an epoch swap, a torn staging directory
    left by a crash mid-copy) by renaming it aside rather than deleting
    it: the rename is atomic, the evidence survives for post-mortem,
    and :func:`prune_quarantine` bounds the accumulation.  Returns the
    quarantined path, or None when ``path`` does not exist.  A name
    collision gets a numeric suffix so nothing is overwritten.
    """
    path = Path(path)
    quarantine_dir = Path(quarantine_dir)
    if not path.exists():
        return None
    quarantine_dir.mkdir(parents=True, exist_ok=True)
    stem = f"{path.name}.{label}" if label else path.name
    target = quarantine_dir / stem
    serial = 0
    while target.exists():
        serial += 1
        target = quarantine_dir / f"{stem}.{serial}"
    os.replace(path, target)
    prune_quarantine(quarantine_dir, include_dirs=True)
    return target


# -- quarantine retention --------------------------------------------------


def resolve_quarantine_keep(keep: Optional[int] = None) -> int:
    """Retention: argument > ``REPRO_QUARANTINE_KEEP`` > default (8)."""
    if keep is not None:
        return max(0, int(keep))
    raw = os.environ.get("REPRO_QUARANTINE_KEEP", "").strip()
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            warnings.warn(
                f"ignoring non-integer REPRO_QUARANTINE_KEEP={raw!r}",
                stacklevel=2,
            )
    return DEFAULT_QUARANTINE_KEEP


def prune_quarantine(
    directory: Union[str, Path], keep: Optional[int] = None,
    include_dirs: bool = False,
) -> int:
    """Delete all but the newest ``keep`` entries in a quarantine dir.

    Quarantined files exist for post-mortem, not as an archive; without
    retention a recurring corruption source grows the directory
    forever.  Newest-first by mtime (ties broken by name so the order
    is total); returns the number of entries removed.  Failures are
    silent — retention is best-effort housekeeping and must never turn
    a quarantine into an error.  With ``include_dirs`` (used by
    :func:`move_aside`, which quarantines whole state directories),
    stale directories are removed recursively.
    """
    directory = Path(directory)
    keep = resolve_quarantine_keep(keep)
    try:
        entries = [
            p for p in directory.iterdir()
            if p.is_file() or (include_dirs and p.is_dir())
        ]
    except OSError:
        return 0
    if len(entries) <= keep:
        return 0

    def age_key(path: Path):
        try:
            mtime = path.stat().st_mtime
        except OSError:
            mtime = 0.0
        # Quarantine names carry serial counters / byte offsets, so on
        # an mtime tie the higher name is the newer file.
        return (mtime, path.name)

    removed = 0
    for stale in sorted(entries, key=age_key, reverse=True)[keep:]:
        try:
            if stale.is_dir():
                import shutil

                shutil.rmtree(stale, ignore_errors=True)
            else:
                stale.unlink()
            removed += 1
        except OSError:
            continue
    return removed
