"""Online retrofitting of environment predictors (Section 4.1).

"It is more challenging for hand-crafted or ad-hoc experts as a new
environment predictor would need to be created.  Alternatively, we
could online, periodically select an expert (with no environment
predictor) and see how it affects the environment and record the
result, slowly building an environment predictor automatically over
time."

:class:`RetrofitExpert` wraps any thread-selection rule (a plain
function over the feature vector) as a mixture-compatible expert whose
environment model starts as *persistence* (predict no change) and is
re-fitted by ridge regression as observations accumulate.  The
:class:`~repro.core.policies.mixture.MixturePolicy` feeds observations
to every expert exposing ``record_observation``.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from .features import NUM_FEATURES, env_norm_of
from .regression import LinearModel, fit_least_squares

#: A thread-selection rule: (feature vector, max threads) -> threads.
ThreadRule = Callable[[np.ndarray, int], int]


class RetrofitExpert:
    """A hand-crafted expert that learns its own environment model."""

    def __init__(
        self,
        name: str,
        thread_rule: ThreadRule,
        provenance: str = "hand-crafted (retrofit)",
        refit_every: int = 25,
        max_observations: int = 2000,
        ridge: float = 1.0,
    ):
        if refit_every < 2:
            raise ValueError("refit_every must be >= 2")
        if max_observations < refit_every:
            raise ValueError("max_observations must cover one refit")
        self.name = name
        self.provenance = provenance
        self._rule = thread_rule
        self._refit_every = refit_every
        self._max_observations = max_observations
        self._ridge = ridge
        self._X: List[np.ndarray] = []
        self._y: List[float] = []
        self.env_model: Optional[LinearModel] = None
        self.feature_low: Optional[np.ndarray] = None
        self.feature_high: Optional[np.ndarray] = None

    # -- the Expert duck-type interface -----------------------------------

    def predict_threads(self, features: np.ndarray,
                        max_threads: int) -> int:
        raw = self._rule(np.asarray(features, dtype=float), max_threads)
        return int(max(1, min(max_threads, round(raw))))

    def predict_env_norm(self, features: np.ndarray) -> float:
        """Fitted model if available, else persistence (no change)."""
        features = np.asarray(features, dtype=float)
        if self.env_model is None:
            return max(0.0, env_norm_of(features))
        if self.feature_low is not None:
            features = np.clip(
                features, self.feature_low, self.feature_high,
            )
        return max(0.0, self.env_model.predict_one(features))

    def env_error(self, features: np.ndarray,
                  observed_norm: float) -> float:
        return abs(self.predict_env_norm(features) - observed_norm)

    def domain_distance(self, features: np.ndarray) -> float:
        """Unfitted experts claim the whole space (no penalty)."""
        if self.feature_low is None or self.feature_high is None:
            return 0.0
        features = np.asarray(features, dtype=float)
        width = np.maximum(self.feature_high - self.feature_low, 1e-9)
        below = np.maximum(self.feature_low - features, 0.0)
        above = np.maximum(features - self.feature_high, 0.0)
        displacement = (below + above) / width
        return float(np.sqrt(np.mean(displacement * displacement)))

    # -- online learning ---------------------------------------------------

    @property
    def observations(self) -> int:
        return len(self._y)

    @property
    def fitted(self) -> bool:
        return self.env_model is not None

    def record_observation(self, features: np.ndarray,
                           next_env_norm: float) -> None:
        """One (f_t, ‖e_{t+1}‖) pair; refit periodically."""
        features = np.asarray(features, dtype=float)
        if features.shape != (NUM_FEATURES,):
            raise ValueError(
                f"expected ({NUM_FEATURES},) features, got "
                f"{features.shape}"
            )
        if next_env_norm < 0:
            raise ValueError("next_env_norm cannot be negative")
        self._X.append(features)
        self._y.append(float(next_env_norm))
        if len(self._y) > self._max_observations:
            self._X.pop(0)
            self._y.pop(0)
        if len(self._y) % self._refit_every == 0:
            self._refit()

    def _refit(self) -> None:
        X = np.stack(self._X)
        y = np.asarray(self._y)
        self.env_model = fit_least_squares(
            X, y, ridge=self._ridge, standardize=True,
        )
        self.feature_low = X.min(axis=0)
        self.feature_high = X.max(axis=0)

    def __repr__(self) -> str:
        state = (
            f"fitted on {self.observations} obs" if self.fitted
            else f"persistence prior ({self.observations} obs)"
        )
        return f"<RetrofitExpert {self.name!r}: {state}>"
