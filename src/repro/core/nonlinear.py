"""Nonlinear experts (the paper's Section 9 future work).

"It will also investigate whether other modeling techniques such as
SVMs trained on the same data ... can be selected by a mixtures
approach."

This module provides kernel-style experts via random Fourier features
(Rahimi & Recht 2007): inputs are standardized, lifted through a random
cosine feature map approximating an RBF kernel, and fitted with ridge
regression — the same model family as a least-squares SVM with an RBF
kernel.  A :class:`NonlinearExpert` is duck-type compatible with
:class:`repro.core.expert.Expert` (same prediction interface, envelope
clipping and domain distance), so linear and nonlinear experts can be
mixed freely in one :class:`~repro.core.policies.mixture.MixturePolicy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .features import NUM_FEATURES, FeatureSample
from .regression import fit_least_squares


@dataclass(frozen=True)
class RBFFeatureMap:
    """Random Fourier features approximating a Gaussian kernel.

    ``z(x) = sqrt(2/D) * cos(W x' + b)`` where ``x'`` is the
    standardized input, ``W ~ N(0, gamma * I)`` and ``b ~ U[0, 2pi)``.
    Deterministic given the seed.
    """

    mean: np.ndarray
    std: np.ndarray
    weights: np.ndarray  # (num_features, input_dim)
    offsets: np.ndarray  # (num_features,)

    @classmethod
    def fit(
        cls,
        X: np.ndarray,
        num_features: int = 120,
        gamma: float = 0.5,
        seed: int = 0,
    ) -> "RBFFeatureMap":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[0] < 2:
            raise ValueError("need a 2-d sample matrix with >= 2 rows")
        if num_features < 1:
            raise ValueError("num_features must be >= 1")
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        rng = np.random.default_rng(seed)
        mean = X.mean(axis=0)
        std = X.std(axis=0)
        std = np.where(std < 1e-12, 1.0, std)
        weights = rng.normal(
            scale=np.sqrt(gamma), size=(num_features, X.shape[1]),
        )
        offsets = rng.uniform(0.0, 2.0 * np.pi, size=num_features)
        return cls(mean=mean, std=std, weights=weights, offsets=offsets)

    @property
    def num_features(self) -> int:
        return len(self.offsets)

    def transform(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Z = (X - self.mean) / self.std
        projected = Z @ self.weights.T + self.offsets
        return np.sqrt(2.0 / self.num_features) * np.cos(projected)


@dataclass(frozen=True)
class NonlinearModel:
    """Feature map + linear readout (a least-squares kernel machine)."""

    feature_map: RBFFeatureMap
    weights: np.ndarray
    intercept: float

    def predict_one(self, features: np.ndarray) -> float:
        lifted = self.feature_map.transform(features)[0]
        return float(lifted @ self.weights + self.intercept)

    def predict(self, X: np.ndarray) -> np.ndarray:
        lifted = self.feature_map.transform(X)
        return lifted @ self.weights + self.intercept


def fit_nonlinear(
    X: np.ndarray,
    y: np.ndarray,
    num_features: int = 120,
    gamma: float = 0.5,
    ridge: float = 1.0,
    seed: int = 0,
) -> NonlinearModel:
    """Fit an RBF-feature ridge model."""
    feature_map = RBFFeatureMap.fit(
        X, num_features=num_features, gamma=gamma, seed=seed,
    )
    lifted = feature_map.transform(X)
    linear = fit_least_squares(lifted, y, ridge=ridge)
    return NonlinearModel(
        feature_map=feature_map,
        weights=linear.weights,
        intercept=linear.intercept,
    )


class NonlinearExpert:
    """A kernel-machine expert, interchangeable with a linear Expert."""

    def __init__(
        self,
        name: str,
        thread_model: NonlinearModel,
        env_model: NonlinearModel,
        provenance: str = "",
        feature_low: Optional[np.ndarray] = None,
        feature_high: Optional[np.ndarray] = None,
    ):
        self.name = name
        self.thread_model = thread_model
        self.env_model = env_model
        self.provenance = provenance
        self.feature_low = feature_low
        self.feature_high = feature_high

    def _clip(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=float)
        if self.feature_low is None or self.feature_high is None:
            return features
        return np.clip(features, self.feature_low, self.feature_high)

    def predict_threads(self, features: np.ndarray,
                        max_threads: int) -> int:
        raw = self.thread_model.predict_one(self._clip(features))
        return int(max(1, min(max_threads, round(raw))))

    def predict_env_norm(self, features: np.ndarray) -> float:
        return max(0.0, self.env_model.predict_one(self._clip(features)))

    def env_error(self, features: np.ndarray,
                  observed_norm: float) -> float:
        return abs(self.predict_env_norm(features) - observed_norm)

    def domain_distance(self, features: np.ndarray) -> float:
        if self.feature_low is None or self.feature_high is None:
            return 0.0
        features = np.asarray(features, dtype=float)
        width = np.maximum(self.feature_high - self.feature_low, 1e-9)
        below = np.maximum(self.feature_low - features, 0.0)
        above = np.maximum(features - self.feature_high, 0.0)
        displacement = (below + above) / width
        return float(np.sqrt(np.mean(displacement * displacement)))

    def __repr__(self) -> str:
        return f"<NonlinearExpert {self.name!r} ({self.provenance})>"


def train_nonlinear_expert(
    name: str,
    samples: Sequence[FeatureSample],
    provenance: str = "",
    num_features: int = 120,
    gamma: float = 0.5,
    ridge: float = 1.0,
    seed: int = 0,
) -> NonlinearExpert:
    """Fit a nonlinear expert's (w, m) pair on a training slice."""
    samples = list(samples)
    if not samples:
        raise ValueError(f"expert {name!r}: no training samples")
    X = np.stack([s.features for s in samples])
    if X.shape[1] != NUM_FEATURES:
        raise ValueError("samples must use the canonical feature vector")
    thread_targets = np.array([s.best_threads for s in samples], float)
    env_targets = np.array([s.next_env_norm for s in samples], float)
    return NonlinearExpert(
        name=name,
        thread_model=fit_nonlinear(
            X, thread_targets, num_features=num_features,
            gamma=gamma, ridge=ridge, seed=seed,
        ),
        env_model=fit_nonlinear(
            X, env_targets, num_features=num_features,
            gamma=gamma, ridge=ridge, seed=seed + 1,
        ),
        provenance=provenance,
        feature_low=X.min(axis=0),
        feature_high=X.max(axis=0),
    )


def build_nonlinear_experts(
    config=None,
    granularity: int = 4,
    num_features: int = 120,
    gamma: float = 0.5,
    seed: int = 0,
) -> tuple:
    """Nonlinear counterparts of the default expert set.

    Uses exactly the same training slices as the linear experts
    ("trained on the same data", Section 9).
    """
    from .training import (
        TrainingConfig,
        partition_samples,
        training_dataset,
    )

    if config is None:
        config = TrainingConfig()
    samples, scalability = training_dataset(config)
    slices = partition_samples(samples, scalability, granularity)

    experts = []
    for index, key in enumerate(sorted(slices), start=1):
        experts.append(train_nonlinear_expert(
            name=f"N{index}",
            samples=slices[key],
            provenance=key,
            num_features=num_features,
            gamma=gamma,
            seed=seed + index,
        ))
    return tuple(experts)
