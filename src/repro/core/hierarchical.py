"""Hierarchical mixture of experts (Jordan & Jacobs, cited as [18]).

The paper's related work points at hierarchical mixtures; this module
provides a two-level gate compatible with the flat
:class:`~repro.core.selector.HyperplaneSelector`:

* a **top gate** routes the state to a *group* of experts (the natural
  grouping here is the training platform: the 12-core experts vs the
  32-core experts);
* a per-group **inner gate** picks the expert within the group.

Both levels are hyperplane perceptrons learning from the same
last-timestep environment errors: the top gate is scored against the
best error within each group, each inner gate against its own members'
errors.  The benchmark ``bench_ext_hierarchical.py`` compares the flat
and hierarchical gates.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from .selector import (
    SCALAR_BATCH_MAX,
    HyperplaneSelector,
    SelectorJournalSink,
    SelectorStats,
    _finite_features,
)
from .training import ExpertBundle


class HierarchicalSelector:
    """Two-level expert selector (an HME gate)."""

    def __init__(
        self,
        groups: Sequence[Sequence[int]],
        dim: int,
        learning_rate: float = 0.5,
        margin: float = 0.2,
    ):
        groups = [tuple(group) for group in groups]
        if not groups or any(not group for group in groups):
            raise ValueError("groups must be non-empty")
        flat = [index for group in groups for index in group]
        if sorted(flat) != list(range(len(flat))):
            raise ValueError(
                "groups must partition expert indices 0..K-1"
            )
        self._groups = groups
        self._dim = dim
        self._lr = learning_rate
        self._margin = margin
        self._journal: Optional[SelectorJournalSink] = None
        self._initial_state: Optional[dict] = None
        self.reset()

    def reset(self) -> None:
        self._top = HyperplaneSelector(
            num_experts=len(self._groups), dim=self._dim,
            learning_rate=self._lr, margin=self._margin,
        )
        self._inner = [
            HyperplaneSelector(
                num_experts=len(group), dim=self._dim,
                learning_rate=self._lr, margin=self._margin,
            )
            for group in self._groups
        ]
        self.stats = SelectorStats()
        if self._initial_state is not None:
            self.load_state(self._initial_state, as_initial=False)

    # -- crash-safe persistence -------------------------------------------

    def attach_journal(self, sink: SelectorJournalSink) -> None:
        """Journal at the gate level, not per sub-selector.

        A replayed ``update``/``select`` on this object drives both
        levels through the exact original code path, so one record per
        top-level operation reconstructs every sub-selector — and the
        sub-selectors must not journal individually or each operation
        would be recorded twice.
        """
        self._journal = sink

    def detach_journal(self) -> None:
        self._journal = None

    def export_state(self) -> dict:
        """Nested snapshot of both gate levels."""
        return {
            "groups": [list(group) for group in self._groups],
            "top": self._top.export_state(),
            "inner": [gate.export_state() for gate in self._inner],
        }

    def load_state(self, state: dict, as_initial: bool = True) -> None:
        """Install a snapshot; with ``as_initial``, reset() returns to it."""
        groups = [tuple(group) for group in state["groups"]]
        if groups != self._groups:
            raise ValueError(
                "state group structure does not match this selector"
            )
        inner_states = state["inner"]
        if len(inner_states) != len(self._inner):
            raise ValueError("state inner-gate count mismatch")
        self._top.load_state(state["top"], as_initial=False)
        for gate, gate_state in zip(self._inner, inner_states):
            gate.load_state(gate_state, as_initial=False)
        self.stats = SelectorStats()
        if as_initial:
            self._initial_state = self.export_state()

    def best_index(self) -> int:
        """Expert favoured overall: best group's best member.

        Derived from persisted bias terms (see
        :meth:`HyperplaneSelector.best_index`), so the answer survives a
        crash/restart unchanged.
        """
        group_index = self._top.best_index()
        local = self._inner[group_index].best_index()
        return self._groups[group_index][local]

    @property
    def num_experts(self) -> int:
        return sum(len(group) for group in self._groups)

    @property
    def groups(self) -> List[tuple]:
        return list(self._groups)

    def select(self, features: np.ndarray) -> int:
        if self._journal is not None:
            self._journal.record_select(_finite_features(features))
        group_index = self._top.select(features)
        local = self._inner[group_index].select(features)
        choice = self._groups[group_index][local]
        self.stats.selections.append(choice)
        return choice

    def select_batch(self, matrix: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`select` over ``(B, F)`` rows.

        Bit-identical to the scalar loop: the top gate batch-selects
        first, then rows are regrouped by chosen group *preserving row
        order*, so each inner gate sees exactly the subsequence the
        scalar loop would have fed it.  The regrouping is safe because
        the only select-time state — each gate's round-robin
        tie-breaker — is touched solely by that gate's own rows.
        """
        matrix = np.ascontiguousarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise ValueError(
                f"expected a (B, F) feature matrix, got {matrix.shape}"
            )
        if len(matrix) <= SCALAR_BATCH_MAX:
            return np.array(
                [self.select(row) for row in matrix], dtype=np.int64
            )
        if self._journal is not None:
            for row in matrix:
                self._journal.record_select(_finite_features(row))
        top_choices = self._top.select_batch(matrix)
        choices = np.empty(len(matrix), dtype=np.int64)
        for group_index, group in enumerate(self._groups):
            rows = np.flatnonzero(top_choices == group_index)
            if len(rows) == 0:
                continue
            local = self._inner[group_index].select_batch(matrix[rows])
            for row, member in zip(rows, local):
                choices[row] = group[member]
        for choice in choices:
            self.stats.selections.append(int(choice))
        return choices

    def update(self, features: np.ndarray,
               errors: Sequence[float]) -> bool:
        errors = list(errors)
        if len(errors) != self.num_experts:
            raise ValueError(
                f"expected {self.num_experts} errors, got {len(errors)}"
            )
        # Degenerate scoring (NaN observation): learn nothing.  A NaN
        # here would propagate through min() into the top gate's group
        # errors and silently corrupt both levels.
        if not all(math.isfinite(float(e)) for e in errors):
            return False
        if self._journal is not None:
            self._journal.record_update(_finite_features(features), errors)
        # Top gate: each group is as good as its best member here.
        group_errors = [
            min(errors[index] for index in group)
            for group in self._groups
        ]
        top_miss = self._top.update(features, group_errors)
        # Inner gates: every group keeps learning its internal map
        # (updates are cheap and all errors are already in hand).
        inner_miss = False
        for gate, group in zip(self._inner, self._groups):
            if len(group) < 2:
                continue
            restricted = [errors[index] for index in group]
            if gate.update(features, restricted):
                inner_miss = True
        self.stats.updates += 1
        mispredicted = top_miss or inner_miss
        if mispredicted:
            self.stats.mispredictions += 1
        return mispredicted


def platform_groups(bundle: ExpertBundle) -> List[List[int]]:
    """Group expert indices by their training platform.

    Experts whose provenance carries no platform marker share one
    group.
    """
    by_platform: dict = {}
    for index, expert in enumerate(bundle.experts):
        _, _, platform = expert.provenance.partition("@")
        by_platform.setdefault(platform, []).append(index)
    return list(by_platform.values())


def build_hierarchical_selector(
    bundle: ExpertBundle,
    dim: int,
    learning_rate: float = 0.5,
    margin: float = 0.2,
) -> HierarchicalSelector:
    """An HME gate over a bundle, grouped by training platform."""
    return HierarchicalSelector(
        groups=platform_groups(bundle),
        dim=dim,
        learning_rate=learning_rate,
        margin=margin,
    )
