"""Hierarchical mixture of experts (Jordan & Jacobs, cited as [18]).

The paper's related work points at hierarchical mixtures; this module
provides a two-level gate compatible with the flat
:class:`~repro.core.selector.HyperplaneSelector`:

* a **top gate** routes the state to a *group* of experts (the natural
  grouping here is the training platform: the 12-core experts vs the
  32-core experts);
* a per-group **inner gate** picks the expert within the group.

Both levels are hyperplane perceptrons learning from the same
last-timestep environment errors: the top gate is scored against the
best error within each group, each inner gate against its own members'
errors.  The benchmark ``bench_ext_hierarchical.py`` compares the flat
and hierarchical gates.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from .selector import HyperplaneSelector, SelectorStats
from .training import ExpertBundle


class HierarchicalSelector:
    """Two-level expert selector (an HME gate)."""

    def __init__(
        self,
        groups: Sequence[Sequence[int]],
        dim: int,
        learning_rate: float = 0.5,
        margin: float = 0.2,
    ):
        groups = [tuple(group) for group in groups]
        if not groups or any(not group for group in groups):
            raise ValueError("groups must be non-empty")
        flat = [index for group in groups for index in group]
        if sorted(flat) != list(range(len(flat))):
            raise ValueError(
                "groups must partition expert indices 0..K-1"
            )
        self._groups = groups
        self._dim = dim
        self._lr = learning_rate
        self._margin = margin
        self.reset()

    def reset(self) -> None:
        self._top = HyperplaneSelector(
            num_experts=len(self._groups), dim=self._dim,
            learning_rate=self._lr, margin=self._margin,
        )
        self._inner = [
            HyperplaneSelector(
                num_experts=len(group), dim=self._dim,
                learning_rate=self._lr, margin=self._margin,
            )
            for group in self._groups
        ]
        self.stats = SelectorStats()

    @property
    def num_experts(self) -> int:
        return sum(len(group) for group in self._groups)

    @property
    def groups(self) -> List[tuple]:
        return list(self._groups)

    def select(self, features: np.ndarray) -> int:
        group_index = self._top.select(features)
        local = self._inner[group_index].select(features)
        choice = self._groups[group_index][local]
        self.stats.selections.append(choice)
        return choice

    def update(self, features: np.ndarray,
               errors: Sequence[float]) -> bool:
        errors = list(errors)
        if len(errors) != self.num_experts:
            raise ValueError(
                f"expected {self.num_experts} errors, got {len(errors)}"
            )
        # Degenerate scoring (NaN observation): learn nothing.  A NaN
        # here would propagate through min() into the top gate's group
        # errors and silently corrupt both levels.
        if not all(math.isfinite(float(e)) for e in errors):
            return False
        # Top gate: each group is as good as its best member here.
        group_errors = [
            min(errors[index] for index in group)
            for group in self._groups
        ]
        top_miss = self._top.update(features, group_errors)
        # Inner gates: every group keeps learning its internal map
        # (updates are cheap and all errors are already in hand).
        inner_miss = False
        for gate, group in zip(self._inner, self._groups):
            if len(group) < 2:
                continue
            restricted = [errors[index] for index in group]
            if gate.update(features, restricted):
                inner_miss = True
        self.stats.updates += 1
        mispredicted = top_miss or inner_miss
        if mispredicted:
            self.stats.mispredictions += 1
        return mispredicted


def platform_groups(bundle: ExpertBundle) -> List[List[int]]:
    """Group expert indices by their training platform.

    Experts whose provenance carries no platform marker share one
    group.
    """
    by_platform: dict = {}
    for index, expert in enumerate(bundle.experts):
        _, _, platform = expert.provenance.partition("@")
        by_platform.setdefault(platform, []).append(index)
    return list(by_platform.values())


def build_hierarchical_selector(
    bundle: ExpertBundle,
    dim: int,
    learning_rate: float = 0.5,
    margin: float = 0.2,
) -> HierarchicalSelector:
    """An HME gate over a bundle, grouped by training platform."""
    return HierarchicalSelector(
        groups=platform_groups(bundle),
        dim=dim,
        learning_rate=learning_rate,
        margin=margin,
    )
