"""Feature selection and feature-impact analysis (Section 5.2.2, Fig 6).

"During the training phase 134 features were collected, comprising of
many code and environment parameters available within our LLVM-based
compiler and Linux.  From these, 10 features were chosen that were found
to be critical to the models based on the quality of information gain."

:func:`build_candidate_pool` composes exactly 134 named candidates per
observation: the raw static code features from the IR extractor, the raw
environment counters from the stats sampler, their one-step lags, and
code-environment interaction terms.  :func:`rank_by_information_gain`
scores them against the best-thread label.

Figure 6's *feature impact* π — "the drop in prediction accuracy of the
model when this feature alone was removed from the feature-set" — is
:func:`feature_impact`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from .features import FEATURE_NAMES, FeatureSample
from .regression import accuracy_within, fit_least_squares

#: The candidate-pool size the paper reports.
CANDIDATE_POOL_SIZE = 134

#: Canonical-code x environment interaction pairs in the pool.
_INTERACTION_CODE = (
    "code.load_store_count", "code.instructions", "code.branches",
)
_INTERACTION_ENV = (
    "env.workload_threads", "env.processors", "env.runq_sz",
    "env.ldavg_1", "env.cached_memory",
)

#: Environment x environment interaction pairs in the pool.
_ENV_INTERACTIONS = (
    ("env.processors", "env.ldavg_1"),
    ("env.workload_threads", "env.processors"),
    ("env.runq_sz", "env.cached_memory"),
    ("env.ldavg_1", "env.pages_free_rate"),
)


def build_candidate_pool(
    code_raw: Mapping[str, float],
    env_raw: Mapping[str, float],
    prev_env_raw: Mapping[str, float],
) -> Dict[str, float]:
    """Compose the 134-feature candidate pool for one observation."""
    pool: Dict[str, float] = {}
    pool.update(code_raw)
    pool.update(env_raw)
    for name in sorted(env_raw):
        if name.endswith(".sq") or name.endswith(".log1p"):
            continue
        pool[f"{name}.lag1"] = float(prev_env_raw.get(name, 0.0))
    for code_name in _INTERACTION_CODE:
        for env_name in _INTERACTION_ENV:
            pool[f"{code_name}*{env_name}"] = (
                float(code_raw[code_name]) * float(env_raw[env_name])
            )
    for left, right in _ENV_INTERACTIONS:
        pool[f"{left}*{right}"] = (
            float(env_raw[left]) * float(env_raw[right])
        )
    if len(pool) != CANDIDATE_POOL_SIZE:
        raise RuntimeError(
            f"candidate pool has {len(pool)} features, expected "
            f"{CANDIDATE_POOL_SIZE}; the raw extractors changed shape"
        )
    return pool


def _discretize(values: np.ndarray, bins: int) -> np.ndarray:
    """Equal-frequency discretisation for information-gain estimation."""
    values = np.asarray(values, dtype=float)
    if np.all(values == values[0]):
        return np.zeros(len(values), dtype=int)
    quantiles = np.quantile(values, np.linspace(0, 1, bins + 1)[1:-1])
    return np.searchsorted(quantiles, values, side="right")


def _entropy(labels: np.ndarray) -> float:
    _, counts = np.unique(labels, return_counts=True)
    p = counts / counts.sum()
    return float(-(p * np.log2(p)).sum())


def information_gain(
    feature: np.ndarray, labels: np.ndarray, bins: int = 8
) -> float:
    """IG(label; discretised feature) in bits."""
    feature = np.asarray(feature, dtype=float)
    labels = np.asarray(labels)
    if feature.shape != labels.shape:
        raise ValueError("feature and labels must align")
    if len(feature) == 0:
        raise ValueError("empty dataset")
    cells = _discretize(feature, bins)
    base = _entropy(labels)
    conditional = 0.0
    for cell in np.unique(cells):
        mask = cells == cell
        conditional += mask.mean() * _entropy(labels[mask])
    return max(0.0, base - conditional)


@dataclass(frozen=True)
class RankedFeature:
    name: str
    gain: float


def rank_by_information_gain(
    table: Mapping[str, np.ndarray],
    labels: np.ndarray,
    bins: int = 8,
) -> List[RankedFeature]:
    """All candidates, ranked by information gain (descending)."""
    if not table:
        raise ValueError("empty feature table")
    ranked = [
        RankedFeature(name=name,
                      gain=information_gain(np.asarray(vals), labels, bins))
        for name, vals in table.items()
    ]
    ranked.sort(key=lambda rf: (-rf.gain, rf.name))
    return ranked


def select_features(
    table: Mapping[str, np.ndarray],
    labels: np.ndarray,
    k: int = 10,
    bins: int = 8,
) -> List[str]:
    """Names of the top-k candidates by information gain."""
    if k < 1:
        raise ValueError("k must be >= 1")
    ranked = rank_by_information_gain(table, labels, bins)
    return [rf.name for rf in ranked[:k]]


def feature_impact(
    samples: Sequence[FeatureSample],
    tolerance: float = 0.25,
) -> Dict[str, float]:
    """Figure 6's π per canonical feature for one expert's data.

    Fits the thread model on all 10 features and on each 9-feature
    subset; the impact of a feature is the accuracy drop its removal
    causes, floored at zero and normalized to sum to 1.
    """
    samples = list(samples)
    if len(samples) < len(FEATURE_NAMES) + 2:
        raise ValueError("not enough samples to measure feature impact")
    X = np.stack([s.features for s in samples])
    y = np.array([s.best_threads for s in samples], dtype=float)
    scorer = accuracy_within(tolerance)

    def fitted_accuracy(matrix: np.ndarray) -> float:
        model = fit_least_squares(matrix, y)
        return scorer(model.predict(matrix), y)

    full = fitted_accuracy(X)
    drops = {}
    for j, name in enumerate(FEATURE_NAMES):
        reduced = np.delete(X, j, axis=1)
        drops[name] = max(0.0, full - fitted_accuracy(reduced))
    total = sum(drops.values())
    if total <= 0:
        # Degenerate (no feature matters): report a uniform pie.
        return {name: 1.0 / len(FEATURE_NAMES) for name in FEATURE_NAMES}
    return {name: drop / total for name, drop in drops.items()}


def average_impact(
    impacts: Sequence[Mapping[str, float]],
) -> Dict[str, float]:
    """π averaged across experts (the number under each pie chart)."""
    if not impacts:
        raise ValueError("no impacts to average")
    result = {}
    for name in FEATURE_NAMES:
        result[name] = float(np.mean([imp[name] for imp in impacts]))
    return result
