"""Monolithic model vs mixture (Figure 14c, Result 7) and expert
granularity (Figure 16, Section 8.4).

Figure 14c: "we evaluate the performance of the mixture of experts
policy comparing it against a single aggregate model with the same
total training data."

Figure 16: monolithic vs 4 experts vs 8 experts (the finer split), in
the small-workload / low-frequency scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..core.policies import MonolithicPolicy
from ..core.training import TrainingConfig, default_experts
from ..runtime.metrics import harmonic_mean
from .runner import (
    PolicyFactory,
    compare_policies,
    mixture_factory,
    standard_policies,
)
from .scenarios import EVALUATION_TARGETS, SMALL_LOW, Scenario


@dataclass
class GranularityResult:
    """Speedups of models of increasing granularity (Figs 14c, 16)."""

    #: label ("monolithic", "experts-4", "experts-8") -> hmean speedup.
    speedups: Dict[str, float]

    def format(self) -> str:
        lines = ["== Figures 14c / 16: model granularity =="]
        lines.append(f"{'model':14s}{'speedup':>9s}")
        for label, value in self.speedups.items():
            lines.append(f"{label:14s}{value:9.2f}")
        return "\n".join(lines)


def run_granularity(
    targets: Sequence[str] = EVALUATION_TARGETS,
    granularities: Sequence[int] = (1, 4, 8),
    scenario: Scenario = SMALL_LOW,
    config: TrainingConfig = TrainingConfig(),
    iterations_scale: float = 1.0,
    seeds: Sequence[int] = (0,),
) -> GranularityResult:
    """Compare models built from the same data at each granularity.

    Granularity 1 is the Section 7.7 monolithic aggregate; 4 is the
    paper's expert set; 8 the finer split of Section 8.4.
    """
    policies: Dict[str, PolicyFactory] = {
        "default": standard_policies(config)["default"],
    }
    for granularity in granularities:
        bundle = default_experts(config, granularity=granularity)
        if granularity == 1:
            expert = bundle.experts[0]
            policies["monolithic"] = (
                lambda e=expert: MonolithicPolicy(e)
            )
        else:
            label = f"experts-{granularity}"
            policies[label] = mixture_factory(bundle, config)

    results: Dict[str, list] = {
        name: [] for name in policies if name != "default"
    }
    for target in targets:
        comparison = compare_policies(
            target, scenario, policies,
            seeds=seeds, iterations_scale=iterations_scale,
        )
        for name in results:
            results[name].append(comparison.speedups[name])
    return GranularityResult(speedups={
        name: harmonic_mean(values) for name, values in results.items()
    })
