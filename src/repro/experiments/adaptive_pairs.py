"""Adaptive workloads: both programs are smart (Figure 13b, Result 4).

"Here we study the combined execution time when one program co-executes
with another and both can adapt i.e. execute using different scheduling
policies. ... The baseline of 1.0 is the performance when each program
employs the default policy."

Each pair (A, B) runs to completion (no restarts); the combined speedup
is the harmonic mean of each program's speedup over the both-default
run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..machine.machine import SimMachine
from ..machine.topology import XEON_L7555
from ..programs import registry
from ..core.training import scale_program
from ..runtime.engine import CoExecutionEngine, JobSpec
from ..runtime.metrics import harmonic_mean
from .runner import PolicyFactory, standard_policies
from .scenarios import Scenario, SMALL_LOW

#: Default program pairs (distinct scaling characters).
DEFAULT_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("lu", "mg"), ("cg", "ep"), ("bt", "is"), ("ft", "sp"),
    ("art", "equake"), ("bodytrack", "freqmine"),
)


@dataclass
class AdaptivePairsResult:
    """Figure 13b: combined speedup when both programs use a policy."""

    #: policy -> per-pair combined speedups.
    per_pair: Dict[str, List[float]]

    def combined(self) -> Dict[str, float]:
        return {
            policy: harmonic_mean(values)
            for policy, values in self.per_pair.items()
        }

    def format(self) -> str:
        lines = ["== Figure 13b: both programs adaptive =="]
        lines.append(f"{'policy':12s}{'combined speedup':>17s}")
        for policy, value in self.combined().items():
            lines.append(f"{policy:12s}{value:17.2f}")
        return "\n".join(lines)


def _run_pair(
    names: Tuple[str, str],
    factory: PolicyFactory,
    scenario: Scenario,
    seed: int,
    iterations_scale: float,
) -> Dict[str, float]:
    """Run a pair, both using ``factory``'s policy; per-program times."""
    machine = SimMachine(
        topology=XEON_L7555,
        availability=scenario.availability(XEON_L7555, seed=seed),
    )
    jobs = []
    for index, name in enumerate(names):
        program = registry.get(name)
        if iterations_scale != 1.0:
            program = scale_program(program, iterations_scale)
        jobs.append(JobSpec(
            program=program,
            policy=factory(),
            job_id=f"p{index}-{name}",
        ))
    engine = CoExecutionEngine(machine=machine, jobs=jobs, max_time=7200.0)
    result = engine.run()
    if result.timed_out:
        raise RuntimeError(f"pair run timed out: {names}")
    return dict(result.job_times)


def run_adaptive_pairs(
    pairs: Sequence[Tuple[str, str]] = DEFAULT_PAIRS,
    policies: Optional[Dict[str, PolicyFactory]] = None,
    scenario: Scenario = SMALL_LOW,
    iterations_scale: float = 1.0,
    seed: int = 0,
) -> AdaptivePairsResult:
    """Figure 13b: every policy employed by both programs of each pair."""
    if policies is None:
        policies = standard_policies()
    if "default" not in policies:
        raise ValueError("policies must include 'default' for the baseline")
    per_pair: Dict[str, List[float]] = {name: [] for name in policies}
    for pair in pairs:
        baseline = _run_pair(
            pair, policies["default"], scenario, seed, iterations_scale,
        )
        for name, factory in policies.items():
            times = _run_pair(
                pair, factory, scenario, seed, iterations_scale,
            )
            speedups = [
                baseline[job_id] / times[job_id] for job_id in times
            ]
            per_pair[name].append(harmonic_mean(speedups))
    return AdaptivePairsResult(per_pair=per_pair)
