"""The Section 3 motivation study (Figures 1-3).

lu co-executes with mg on the 12-core machine, replaying the workload
pattern around the 175,000th second of the live trace (Figure 1).  Four
policies are compared: the analytic model, each of two individual
experts, and the mixture of those two experts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.policies import (
    AnalyticPolicy,
    DefaultPolicy,
    MixturePolicy,
    SingleExpertPolicy,
)
from ..core.training import TrainingConfig, default_experts
from ..machine.availability import TraceAvailability
from ..machine.machine import SimMachine
from ..machine.topology import TWELVE_CORE
from ..programs import registry
from ..runtime.engine import CoExecutionEngine, JobSpec, TimelinePoint
from ..workload.trace import generate_live_trace

#: Centre of the zoom window in the live trace, seconds (Figure 1).
ZOOM_POINT = 175_000.0


@dataclass
class MotivationResult:
    """Timelines and speedups for the motivation figures."""

    #: Figure 1: the (time, threads) live-system series.
    live_trace_points: int
    #: Figure 2: per-policy decision timelines.
    timelines: Dict[str, List[TimelinePoint]]
    thread_choices: Dict[str, List[Tuple[float, int]]]
    #: Figure 3: speedups over the OpenMP default.
    speedups: Dict[str, float]

    def format(self) -> str:
        lines = ["== Motivation (Figures 1-3): lu vs mg on 12 cores =="]
        lines.append(f"live trace: {self.live_trace_points} samples")
        lines.append(f"{'policy':12s}{'speedup':>9s}")
        for name, value in self.speedups.items():
            lines.append(f"{name:12s}{value:9.2f}")
        return "\n".join(lines)


def _zoom_availability(seed: int) -> TraceAvailability:
    """Availability on the 12-core machine derived from the trace zoom.

    The live demand is scaled down to the 12-core machine; processor
    availability mirrors the big system's free capacity.
    """
    trace = generate_live_trace(seed=seed)
    window = trace.window(ZOOM_POINT - 600.0, ZOOM_POINT + 600.0)
    capacity = window.system.hw_contexts
    points = []
    for time, threads in zip(window.times, window.threads):
        free_fraction = 1.0 - threads / capacity
        processors = max(3, int(round(
            TWELVE_CORE.cores * (0.25 + 0.75 * free_fraction)
        )))
        points.append((time - window.times[0], min(processors, 12)))
    return TraceAvailability.from_pairs(points)


def run_motivation(
    config: TrainingConfig = TrainingConfig(),
    iterations_scale: float = 1.0,
    seed: int = 2015,
) -> MotivationResult:
    """Run the Figures 2/3 comparison."""
    from .runner import run_target  # local import to avoid cycle
    from ..core.training import scale_program

    bundle = default_experts(config)
    # The motivation study uses two experts (E^1, E^2); we take the two
    # 12-core experts, whose training platform matches the machine.
    twelve = [e for e in bundle.experts
              if TWELVE_CORE.name in e.provenance] or list(bundle.experts)
    expert_1, expert_2 = twelve[0], (twelve + list(bundle.experts))[1]

    availability = _zoom_availability(seed)
    machine = SimMachine(topology=TWELVE_CORE, availability=availability)

    policies = {
        "default": DefaultPolicy(),
        "analytic": AnalyticPolicy(),
        "expert-1": SingleExpertPolicy(expert_1, name="expert-1"),
        "expert-2": SingleExpertPolicy(expert_2, name="expert-2"),
        "mixture": MixturePolicy((expert_1, expert_2)),
    }

    target = registry.get("lu")
    workload = registry.get("mg")
    if iterations_scale != 1.0:
        target = scale_program(target, iterations_scale)
        workload = scale_program(workload, iterations_scale)

    timelines: Dict[str, List[TimelinePoint]] = {}
    thread_choices: Dict[str, List[Tuple[float, int]]] = {}
    times: Dict[str, float] = {}
    for name, policy in policies.items():
        engine = CoExecutionEngine(
            machine=machine,
            jobs=[
                JobSpec(program=target, policy=policy,
                        job_id="target", is_target=True),
                JobSpec(program=workload, policy=DefaultPolicy(),
                        job_id="workload", restart=True),
            ],
            max_time=7200.0,
        )
        result = engine.run()
        if result.target_time is None:
            raise RuntimeError(f"motivation run timed out for {name}")
        times[name] = result.target_time
        timelines[name] = result.timeline
        thread_choices[name] = [
            (s.time, s.threads) for s in result.target_selections()
        ]

    trace = generate_live_trace(seed=seed)
    return MotivationResult(
        live_trace_points=len(trace.times),
        timelines=timelines,
        thread_choices=thread_choices,
        speedups={
            name: times["default"] / t
            for name, t in times.items()
        },
    )
