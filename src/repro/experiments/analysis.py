"""Section 8 analyses: environment-predictor accuracy (Figure 15a),
expert-selection frequency (Figure 15b), number of experts
(Figure 15c), and the thread-number distribution (Figure 17).

All of these interrogate the mixture policy's decision log, which
records every expert's environment prediction at every decision plus
the subsequently-observed environment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.policies import MixturePolicy
from ..core.training import TrainingConfig, default_experts
from ..runtime.metrics import harmonic_mean
from .runner import (
    PolicyFactory,
    compare_policies,
    mixture_factory,
    run_target,
    standard_policies,
)
from .scenarios import (
    DYNAMIC_SCENARIOS,
    EVALUATION_TARGETS,
    LARGE_LOW,
    Scenario,
)
from ..workload.spec import workload_sets


def _mixture_runs(
    targets: Sequence[str],
    scenario: Scenario,
    config: TrainingConfig,
    iterations_scale: float,
    seed: int,
    num_experts: Optional[int] = None,
) -> List[MixturePolicy]:
    """Run the mixture on each target; return the used policy objects."""
    bundle = default_experts(config)
    experts = bundle.experts
    if num_experts is not None:
        experts = experts[:num_experts]
    factory = mixture_factory(
        type(bundle)(
            experts=experts,
            scalability=bundle.scalability,
            samples_per_expert=bundle.samples_per_expert,
            config=bundle.config,
        ),
        config,
    )
    sets = workload_sets(scenario.workload_size or "small")
    policies = []
    for target in targets:
        policy = factory()
        run_target(
            target, policy, scenario,
            workload_set=sets[0], seed=seed,
            iterations_scale=iterations_scale, max_time=7200.0,
        )
        policies.append(policy)
    return policies


@dataclass
class AccuracyResult:
    """Figure 15a: environment-predictor accuracy."""

    per_expert: List[float]
    mixture: float

    def format(self) -> str:
        lines = ["== Figure 15a: environment predictor accuracy =="]
        for index, value in enumerate(self.per_expert, start=1):
            lines.append(f"expert {index}: {value:5.1%}")
        lines.append(f"mixture : {self.mixture:5.1%}")
        return "\n".join(lines)


def run_env_accuracy(
    targets: Sequence[str] = EVALUATION_TARGETS,
    scenarios: Sequence[Scenario] = DYNAMIC_SCENARIOS,
    config: TrainingConfig = TrainingConfig(),
    iterations_scale: float = 1.0,
    tolerance: float = 0.25,
    seed: int = 0,
) -> AccuracyResult:
    """Accuracy of each expert's (and the mixture's) env predictions."""
    per_expert_acc: List[List[float]] = []
    mixture_acc: List[float] = []
    for scenario in scenarios:
        for policy in _mixture_runs(
            targets, scenario, config, iterations_scale, seed,
        ):
            accs = policy.env_prediction_accuracies(tolerance)
            if any(accs):
                per_expert_acc.append(accs)
                mixture_acc.append(policy.mixture_accuracy(tolerance))
    if not per_expert_acc:
        raise RuntimeError("no scored mixture decisions recorded")
    matrix = np.array(per_expert_acc)
    return AccuracyResult(
        per_expert=[float(v) for v in matrix.mean(axis=0)],
        mixture=float(np.mean(mixture_acc)),
    )


@dataclass
class SelectionFrequencyResult:
    """Figure 15b: how often each expert is chosen, per scenario."""

    #: scenario name -> normalised selection frequency per expert.
    frequencies: Dict[str, List[float]]

    def format(self) -> str:
        lines = ["== Figure 15b: expert selection frequency =="]
        for scenario, freqs in self.frequencies.items():
            row = " ".join(f"E{i + 1}={f:5.1%}" for i, f in enumerate(freqs))
            lines.append(f"{scenario:12s} {row}")
        return "\n".join(lines)


def run_selection_frequency(
    targets: Sequence[str] = EVALUATION_TARGETS,
    scenarios: Sequence[Scenario] = DYNAMIC_SCENARIOS,
    config: TrainingConfig = TrainingConfig(),
    iterations_scale: float = 1.0,
    seed: int = 0,
) -> SelectionFrequencyResult:
    """Distribution of expert selections in each scenario."""
    frequencies: Dict[str, List[float]] = {}
    for scenario in scenarios:
        counts = None
        for policy in _mixture_runs(
            targets, scenario, config, iterations_scale, seed,
        ):
            these = np.array(policy.selection_counts(), dtype=float)
            counts = these if counts is None else counts + these
        total = counts.sum()
        frequencies[scenario.name] = [
            float(c / total) if total else 0.0 for c in counts
        ]
    return SelectionFrequencyResult(frequencies=frequencies)


@dataclass
class NumExpertsResult:
    """Figure 15c: speedup vs the number of experts in the mixture."""

    #: Single-expert speedups (E1..E4 deployed alone).
    single_expert: List[float]
    #: hmean speedup of mixtures of the first k experts, k=1..K.
    by_count: Dict[int, float]

    def format(self) -> str:
        lines = ["== Figure 15c: number of experts =="]
        for index, value in enumerate(self.single_expert, start=1):
            lines.append(f"expert {index} alone: {value:5.2f}")
        for count, value in self.by_count.items():
            lines.append(f"mixture of {count}: {value:5.2f}")
        return "\n".join(lines)


def run_num_experts(
    targets: Sequence[str] = EVALUATION_TARGETS,
    scenario: Scenario = LARGE_LOW,
    config: TrainingConfig = TrainingConfig(),
    iterations_scale: float = 1.0,
    seeds: Sequence[int] = (0,),
) -> NumExpertsResult:
    """Figure 15c, in the paper's large-workload/low-frequency setting.

    Mixtures of k experts add experts starting from the scenario's most
    relevant one (the paper's Section 8.3 analysis starts from the
    experts "most accurate here", E3/E4 in this scenario): the subsets
    are E4; E4+E3; E4+E3+E2; all four.
    """
    from ..core.policies import SingleExpertPolicy
    from ..core.training import ExpertBundle

    bundle = default_experts(config)
    ordered = tuple(reversed(bundle.experts))
    policies: Dict[str, PolicyFactory] = {
        "default": standard_policies(config)["default"],
    }
    for index, expert in enumerate(bundle.experts, start=1):
        policies[f"single-{index}"] = (
            lambda e=expert: SingleExpertPolicy(e, name=e.name)
        )
    for count in range(1, len(ordered) + 1):
        sub = ExpertBundle(
            experts=ordered[:count],
            scalability=bundle.scalability,
            samples_per_expert=bundle.samples_per_expert,
            config=bundle.config,
        )
        policies[f"mixture-{count}"] = mixture_factory(sub, config)

    collected: Dict[str, list] = {
        name: [] for name in policies if name != "default"
    }
    for target in targets:
        comparison = compare_policies(
            target, scenario, policies,
            seeds=seeds, iterations_scale=iterations_scale,
        )
        for name in collected:
            collected[name].append(comparison.speedups[name])
    hmeans = {
        name: harmonic_mean(values)
        for name, values in collected.items()
    }
    return NumExpertsResult(
        single_expert=[
            hmeans[f"single-{i}"]
            for i in range(1, len(bundle.experts) + 1)
        ],
        by_count={
            count: hmeans[f"mixture-{count}"]
            for count in range(1, len(bundle.experts) + 1)
        },
    )


@dataclass
class ThreadDistributionResult:
    """Figure 17: thread numbers predicted by each expert & mixture."""

    #: label -> histogram over thread-count buckets.
    distributions: Dict[str, Dict[str, int]]
    buckets: Tuple[Tuple[int, int], ...]

    def format(self) -> str:
        lines = ["== Figure 17: thread number distribution =="]
        header = f"{'policy':12s}" + "".join(
            f"{f'{lo}-{hi}':>9s}" for lo, hi in self.buckets
        )
        lines.append(header)
        for label, hist in self.distributions.items():
            lines.append(
                f"{label:12s}" + "".join(
                    f"{hist[f'{lo}-{hi}']:9d}" for lo, hi in self.buckets
                )
            )
        return "\n".join(lines)


#: Thread-count buckets used by Figure 17's histogram.
DEFAULT_BUCKETS: Tuple[Tuple[int, int], ...] = (
    (1, 4), (5, 8), (9, 16), (17, 24), (25, 32),
)


def run_thread_distribution(
    targets: Sequence[str] = EVALUATION_TARGETS,
    scenario: Scenario = LARGE_LOW,
    config: TrainingConfig = TrainingConfig(),
    iterations_scale: float = 1.0,
    seed: int = 0,
    buckets: Tuple[Tuple[int, int], ...] = DEFAULT_BUCKETS,
) -> ThreadDistributionResult:
    """Histogram the thread choices of each expert and of the mixture."""
    bundle = default_experts(config)

    def bucket_of(threads: int) -> str:
        for lo, hi in buckets:
            if lo <= threads <= hi:
                return f"{lo}-{hi}"
        lo, hi = buckets[-1]
        return f"{lo}-{hi}"

    distributions: Dict[str, Dict[str, int]] = {}
    mixture_hist = {f"{lo}-{hi}": 0 for lo, hi in buckets}
    expert_hists = [
        {f"{lo}-{hi}": 0 for lo, hi in buckets}
        for _ in bundle.experts
    ]
    for policy in _mixture_runs(
        targets, scenario, config, iterations_scale, seed,
    ):
        for decision in policy.decisions:
            mixture_hist[bucket_of(decision.threads)] += 1
            for index, threads in enumerate(decision.predicted_threads):
                expert_hists[index][bucket_of(threads)] += 1
    for index, hist in enumerate(expert_hists, start=1):
        distributions[f"E{index}"] = hist
    distributions["mixture"] = mixture_hist
    return ThreadDistributionResult(
        distributions=distributions, buckets=buckets,
    )
