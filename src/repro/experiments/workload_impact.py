"""Impact on co-executing workloads (Figure 13a, Result 3).

"Any optimization scheme improving the target program performance
should ideally exert minimal impact on the co-executing workloads."
Workload performance is measured as aggregate workload throughput
(core-seconds of retired work per second) relative to the run where the
target used the OpenMP default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..runtime.metrics import harmonic_mean
from .runner import PolicyFactory, compare_policies, standard_policies
from .scenarios import DYNAMIC_SCENARIOS, EVALUATION_TARGETS, Scenario


@dataclass
class WorkloadImpactResult:
    """Figure 13a: workload throughput gain per policy."""

    #: target -> policy -> workload throughput relative to default.
    per_target: Dict[str, Dict[str, float]]

    def overall(self) -> Dict[str, float]:
        policies = next(iter(self.per_target.values())).keys()
        return {
            policy: harmonic_mean([
                gains[policy] for gains in self.per_target.values()
            ])
            for policy in policies
        }

    def format(self) -> str:
        overall = self.overall()
        lines = ["== Figure 13a: impact on external workloads =="]
        lines.append(f"{'policy':12s}{'workload gain':>14s}")
        for policy, gain in overall.items():
            lines.append(f"{policy:12s}{gain:14.2f}")
        return "\n".join(lines)


def run_workload_impact(
    targets: Sequence[str] = EVALUATION_TARGETS,
    scenarios: Sequence[Scenario] = DYNAMIC_SCENARIOS,
    policies: Optional[Dict[str, PolicyFactory]] = None,
    iterations_scale: float = 1.0,
    seeds: Sequence[int] = (0,),
) -> WorkloadImpactResult:
    """Measure workload throughput under each target policy."""
    if policies is None:
        policies = standard_policies()
    per_target: Dict[str, Dict[str, float]] = {}
    for target in targets:
        gains_across: Dict[str, list] = {name: [] for name in policies}
        for scenario in scenarios:
            comparison = compare_policies(
                target, scenario, policies,
                seeds=seeds, iterations_scale=iterations_scale,
            )
            for name, gain in comparison.workload_gains.items():
                gains_across[name].append(gain)
        per_target[target] = {
            name: harmonic_mean(values)
            for name, values in gains_across.items()
        }
    return WorkloadImpactResult(per_target=per_target)
