"""Experimental scenarios (Section 6.4).

Four dynamic scenarios — {small, large} workload x {low, high} frequency
of hardware change — plus the isolated static setting of Section 7.1.
The evaluation platform is the Table 2 machine (32-core Xeon L7555).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..machine.availability import (
    AvailabilitySchedule,
    HIGH_FREQUENCY_PERIOD,
    LOW_FREQUENCY_PERIOD,
    PeriodicAvailability,
    StaticAvailability,
)
from ..machine.topology import Topology, XEON_L7555

#: Benchmarks used as evaluation *targets* in the per-benchmark figures.
#: NAS C codes plus SpecOMP and Parsec programs never seen in training.
EVALUATION_TARGETS: Tuple[str, ...] = (
    "bt", "cg", "ep", "ft", "is", "lu", "mg", "sp",
    "ammp", "art", "equake",
    "blackscholes", "bodytrack", "freqmine",
)

#: Smaller target set for quick sanity runs and unit tests.
QUICK_TARGETS: Tuple[str, ...] = ("lu", "cg", "ep", "mg")


@dataclass(frozen=True)
class Scenario:
    """One evaluation setting."""

    name: str
    workload_size: Optional[str]  # "small" | "large" | None (isolated)
    hw_change: str  # "static" | "low" | "high"

    def __post_init__(self) -> None:
        if self.workload_size not in (None, "small", "large"):
            raise ValueError(
                f"bad workload_size {self.workload_size!r}"
            )
        if self.hw_change not in ("static", "low", "high"):
            raise ValueError(f"bad hw_change {self.hw_change!r}")

    def availability(
        self, topology: Topology = XEON_L7555, seed: int = 0
    ) -> AvailabilitySchedule:
        """The processor-availability schedule for this scenario."""
        if self.hw_change == "static":
            return StaticAvailability(topology.cores)
        period = (
            LOW_FREQUENCY_PERIOD if self.hw_change == "low"
            else HIGH_FREQUENCY_PERIOD
        )
        return PeriodicAvailability(
            max_processors=topology.cores, period=period, seed=seed,
        )


#: Section 7.1: isolated and static.
STATIC_ISOLATED = Scenario("static-isolated", None, "static")

#: Section 7.2: the four dynamic scenarios of Figures 8-12.
SMALL_LOW = Scenario("small-low", "small", "low")
SMALL_HIGH = Scenario("small-high", "small", "high")
LARGE_LOW = Scenario("large-low", "large", "low")
LARGE_HIGH = Scenario("large-high", "large", "high")

DYNAMIC_SCENARIOS: Tuple[Scenario, ...] = (
    SMALL_LOW, SMALL_HIGH, LARGE_LOW, LARGE_HIGH,
)

ALL_SCENARIOS: Tuple[Scenario, ...] = (
    (STATIC_ISOLATED,) + DYNAMIC_SCENARIOS
)
