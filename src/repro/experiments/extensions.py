"""Extensions from the paper's Section 9 future work.

* :func:`run_model_comparison` — "whether other modeling techniques
  such as SVMs trained on the same data ... can be selected by a
  mixtures approach": mixtures of linear experts, of kernel-machine
  experts, and of both pooled together.
* :func:`run_data_tradeoff` — "the trade-off in number of experts vs
  training data size": monolithic vs 4-expert models fitted on
  subsampled fractions of the training data.
* :func:`run_portability` — "evaluate on alternative hardware
  platforms": deploy the experts (trained on the 12- and 32-core
  machines) on a 48-core machine they have never seen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.nonlinear import build_nonlinear_experts
from ..core.policies import DefaultPolicy, MixturePolicy, MonolithicPolicy
from ..core.training import (
    ExpertBundle,
    TrainingConfig,
    build_experts,
    default_experts,
    train_expert,
    training_dataset,
)
from ..machine.topology import Topology
from ..runtime.metrics import harmonic_mean
from .runner import (
    PolicyFactory,
    compare_policies,
    mixture_factory,
)
from .scenarios import SMALL_LOW, Scenario

#: Section 9 portability target: a 48-core machine neither expert was
#: trained on (4 sockets x 12 cores, generous memory system).
OPTERON_48 = Topology(
    name="opteron-48",
    sockets=4,
    cores_per_socket=12,
    freq_ghz=2.2,
    llc_mb=48.0,
    ram_gb=128.0,
    mem_bandwidth_gbs=85.0,
)


@dataclass
class VariantResult:
    """hmean speedups of labelled policy variants vs the default."""

    title: str
    speedups: Dict[str, float]

    def format(self) -> str:
        lines = [f"== {self.title} =="]
        lines.append(f"{'variant':30s}{'speedup':>9s}")
        for label, value in self.speedups.items():
            lines.append(f"{label:30s}{value:9.2f}")
        return "\n".join(lines)


def _evaluate_variants(
    title: str,
    variants: Dict[str, PolicyFactory],
    targets: Sequence[str],
    scenario: Scenario,
    iterations_scale: float,
    seeds: Sequence[int],
    topology=None,
) -> VariantResult:
    policies: Dict[str, PolicyFactory] = {
        "default": DefaultPolicy, **variants,
    }
    collected: Dict[str, List[float]] = {name: [] for name in variants}
    kwargs = {} if topology is None else {"topology": topology}
    for target in targets:
        comparison = compare_policies(
            target, scenario, policies,
            seeds=seeds, iterations_scale=iterations_scale, **kwargs,
        )
        for name in variants:
            collected[name].append(comparison.speedups[name])
    return VariantResult(
        title=title,
        speedups={
            name: harmonic_mean(values)
            for name, values in collected.items()
        },
    )


def run_model_comparison(
    targets: Sequence[str] = ("cg", "ep", "lu", "mg", "art"),
    scenario: Scenario = SMALL_LOW,
    config: TrainingConfig = TrainingConfig(),
    iterations_scale: float = 1.0,
    seeds: Sequence[int] = (0,),
) -> VariantResult:
    """Linear vs kernel-machine experts, same data, same selector."""
    linear = default_experts(config)
    nonlinear = build_nonlinear_experts(config)
    pooled = tuple(linear.experts) + tuple(nonlinear)
    variants = {
        "linear experts (paper)": mixture_factory(linear, config),
        "kernel experts (SVM-style)": (
            lambda: MixturePolicy(nonlinear)
        ),
        "linear + kernel pooled": (
            lambda: MixturePolicy(pooled)
        ),
    }
    return _evaluate_variants(
        "Extension: expert model families (Section 9)",
        variants, targets, scenario, iterations_scale, seeds,
    )


def run_data_tradeoff(
    targets: Sequence[str] = ("cg", "ep", "lu", "mg"),
    fractions: Sequence[float] = (0.25, 0.5, 1.0),
    scenario: Scenario = SMALL_LOW,
    config: TrainingConfig = TrainingConfig(),
    iterations_scale: float = 1.0,
    seeds: Sequence[int] = (0,),
    subsample_seed: int = 13,
) -> VariantResult:
    """Experts vs monolithic across training-data sizes.

    Each fraction subsamples the shared training set once (uniformly at
    random, fixed seed) and fits both a monolithic model and the
    4-expert mixture on that subsample.
    """
    samples, scalability = training_dataset(config)
    rng = np.random.default_rng(subsample_seed)
    variants: Dict[str, PolicyFactory] = {}
    for fraction in fractions:
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fractions must be in (0, 1]")
        count = max(60, int(round(fraction * len(samples))))
        index = rng.choice(len(samples), size=min(count, len(samples)),
                           replace=False)
        subset = [samples[i] for i in index]
        mono = train_expert("mono", subset, provenance="monolithic")
        try:
            bundle = build_experts(
                config, granularity=4,
                samples=subset, scalability=scalability,
            )
            variants[f"experts-4 @ {fraction:.0%}"] = mixture_factory(
                bundle, config,
            )
        except RuntimeError:
            pass  # too little data for every slice at tiny fractions
        variants[f"monolithic @ {fraction:.0%}"] = (
            lambda e=mono: MonolithicPolicy(e)
        )
    return _evaluate_variants(
        "Extension: experts vs training-data size (Section 9)",
        variants, targets, scenario, iterations_scale, seeds,
    )


def run_energy(
    targets: Sequence[str] = ("cg", "lu", "mg", "bodytrack"),
    scenario: Scenario = SMALL_LOW,
    config: TrainingConfig = TrainingConfig(),
    iterations_scale: float = 1.0,
    seed: int = 0,
) -> VariantResult:
    """Energy-to-solution per policy (the power motivation, ref [30]).

    Busy-wait synchronisation burns active power without retiring work,
    so a policy that stops over-threading should reduce the energy a
    program costs — measured here as joules per unit of target work,
    normalised to the OpenMP default (>1 means energy *saved*).
    """
    from ..machine.power import PowerModel, energy_to_solution
    from ..machine.topology import XEON_L7555
    from ..programs import registry
    from ..core.training import scale_program
    from ..workload.spec import workload_sets
    from .runner import run_target

    bundle = default_experts(config)
    model = PowerModel(topology=XEON_L7555)
    policies: Dict[str, PolicyFactory] = {
        "default": DefaultPolicy,
        "mixture": mixture_factory(bundle, config),
    }
    workload = workload_sets(scenario.workload_size or "small")[0]

    savings: List[float] = []
    for target_name in targets:
        target = registry.get(target_name)
        if iterations_scale != 1.0:
            target = scale_program(target, iterations_scale)
        per_policy = {}
        for name, factory in policies.items():
            outcome = run_target(
                target_name, factory(), scenario,
                workload_set=workload, seed=seed,
                iterations_scale=iterations_scale, max_time=7200.0,
                timeline_period=1.0,
            )
            per_policy[name] = energy_to_solution(
                outcome.result, model, "target", target.total_work,
            )
        savings.append(per_policy["default"] / per_policy["mixture"])
    return VariantResult(
        title="Extension: energy to solution (power motivation)",
        speedups={
            "mixture energy saving": harmonic_mean(savings),
        },
    )


def run_unseen_suite(
    targets: Sequence[str] = (
        "kmeans", "bfs", "hotspot", "lud", "nw", "srad",
        "streamcluster", "backprop",
    ),
    scenario: Scenario = SMALL_LOW,
    config: TrainingConfig = TrainingConfig(),
    iterations_scale: float = 1.0,
    seeds: Sequence[int] = (0,),
) -> VariantResult:
    """The mixture on a whole suite it never trained on (Rodinia).

    The paper evaluates on SpecOMP and Parsec programs absent from the
    NAS-only training set; this pushes the same generality question to
    a third unseen suite with different kernel characters (graph
    traversal, stencils, wavefronts).
    """
    bundle = default_experts(config)
    variants = {
        "mixture on rodinia": mixture_factory(bundle, config),
    }
    return _evaluate_variants(
        "Extension: unseen suite (Rodinia)",
        variants, targets, scenario, iterations_scale, seeds,
    )


def run_churn(
    targets: Sequence[str] = ("cg", "lu", "mg", "bodytrack"),
    config: TrainingConfig = TrainingConfig(),
    iterations_scale: float = 1.0,
    arrival_rate: float = 0.05,
    horizon: float = 250.0,
    seed: int = 0,
) -> VariantResult:
    """Mapping under job churn: workloads arrive and depart.

    Beyond the paper's fixed restarting workloads, jobs here arrive as
    a Poisson stream and run once — the shape of the Figure 1 log.
    The mixture must hold its advantage when contention changes through
    *arrivals* rather than thread-count variation alone.
    """
    from ..machine.machine import SimMachine
    from ..machine.topology import XEON_L7555
    from ..programs import registry
    from ..runtime.engine import CoExecutionEngine, JobSpec
    from ..workload.arrivals import arrival_jobs, generate_arrivals
    from ..core.training import scale_program

    bundle = default_experts(config)
    policies: Dict[str, PolicyFactory] = {
        "default": DefaultPolicy,
        "mixture": mixture_factory(bundle, config),
    }
    arrivals = generate_arrivals(
        pool=("is", "cg", "ft", "bt", "ammp"),
        rate=arrival_rate, horizon=horizon, seed=seed,
    )

    collected: Dict[str, List[float]] = {"mixture": []}
    for target_name in targets:
        target = registry.get(target_name)
        if iterations_scale != 1.0:
            target = scale_program(target, iterations_scale)
        times = {}
        for name, factory in policies.items():
            machine = SimMachine(topology=XEON_L7555)
            jobs = [JobSpec(program=target, policy=factory(),
                            job_id="target", is_target=True)]
            jobs.extend(arrival_jobs(arrivals, DefaultPolicy))
            engine = CoExecutionEngine(
                machine=machine, jobs=jobs, max_time=7200.0,
            )
            result = engine.run()
            if result.target_time is None:
                raise RuntimeError(
                    f"churn run timed out: {target_name}/{name}"
                )
            times[name] = result.target_time
        collected["mixture"].append(times["default"] / times["mixture"])
    return VariantResult(
        title="Extension: mapping under job churn",
        speedups={
            "mixture under churn": harmonic_mean(collected["mixture"]),
        },
    )


def run_portability(
    targets: Sequence[str] = ("cg", "ep", "lu", "mg", "art"),
    scenario: Scenario = SMALL_LOW,
    config: TrainingConfig = TrainingConfig(),
    iterations_scale: float = 1.0,
    seeds: Sequence[int] = (0,),
    topology: Topology = OPTERON_48,
) -> VariantResult:
    """The trained mixture on a platform it never saw (Section 9)."""
    bundle = default_experts(config)
    variants = {
        "mixture (12/32-core experts)": mixture_factory(bundle, config),
    }
    return _evaluate_variants(
        f"Extension: portability to {topology.name} "
        f"({topology.cores} cores)",
        variants, targets, scenario, iterations_scale, seeds,
        topology=topology,
    )
