"""Table 1 (expert model weights) and Figure 6 (feature impact).

Table 1 lists, per expert, the weights of the thread predictor ``w`` and
the environment predictor ``m`` over the 10 selected features plus the
regression constant β.  Figure 6 shows each feature's *impact* π — the
drop in model accuracy when that feature alone is removed — as one pie
chart per expert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.feature_selection import average_impact, feature_impact
from ..core.features import FEATURE_NAMES, FeatureSample
from ..core.training import (
    ExpertBundle,
    TrainingConfig,
    default_experts,
    partition_samples,
    training_dataset,
)


@dataclass
class ExpertWeightsTable:
    """Table 1: per-expert (w, m) weights and intercepts."""

    bundle: ExpertBundle

    def rows(self) -> List[dict]:
        """One row per feature, with w/m weights for every expert."""
        out = []
        for index, name in enumerate(FEATURE_NAMES):
            row = {"feature": f"f^{index + 1}", "description": name}
            for expert in self.bundle.experts:
                row[f"{expert.name}.w"] = float(
                    expert.thread_model.weights[index]
                )
                row[f"{expert.name}.m"] = float(
                    expert.env_model.weights[index]
                )
            out.append(row)
        beta = {"feature": "β", "description": "regression constant"}
        for expert in self.bundle.experts:
            beta[f"{expert.name}.w"] = expert.thread_model.intercept
            beta[f"{expert.name}.m"] = expert.env_model.intercept
        out.append(beta)
        return out

    def format(self) -> str:
        experts = self.bundle.experts
        lines = ["== Table 1: model weights per expert =="]
        header = f"{'feature':22s}" + "".join(
            f"{expert.name + '.w':>10s}{expert.name + '.m':>10s}"
            for expert in experts
        )
        lines.append(header)
        for row in self.rows():
            cells = "".join(
                f"{row[f'{e.name}.w']:10.3f}{row[f'{e.name}.m']:10.3f}"
                for e in experts
            )
            lines.append(f"{row['description']:22s}" + cells)
        return "\n".join(lines)


def run_expert_weights(
    config: TrainingConfig = TrainingConfig(),
) -> ExpertWeightsTable:
    """Produce the Table 1 analogue from the trained experts."""
    return ExpertWeightsTable(bundle=default_experts(config))


@dataclass
class FeatureImpactResult:
    """Figure 6: π per feature, per expert, plus the overall average."""

    per_expert: Dict[str, Dict[str, float]]
    averaged: Dict[str, float]

    def format(self) -> str:
        lines = ["== Figure 6: feature impact (π) =="]
        experts = list(self.per_expert)
        header = f"{'feature':22s}" + "".join(
            f"{name:>8s}" for name in experts
        ) + f"{'avg':>8s}"
        lines.append(header)
        for feature in FEATURE_NAMES:
            cells = "".join(
                f"{self.per_expert[e][feature]:8.3f}" for e in experts
            )
            lines.append(
                f"{feature:22s}{cells}{self.averaged[feature]:8.3f}"
            )
        return "\n".join(lines)


def run_feature_impact(
    config: TrainingConfig = TrainingConfig(),
    tolerance: float = 0.25,
) -> FeatureImpactResult:
    """Leave-one-feature-out accuracy drops for each expert's data."""
    samples, scalability = training_dataset(config)
    slices = partition_samples(samples, scalability, granularity=4)
    bundle = default_experts(config)
    provenance_to_name = {
        expert.provenance: expert.name for expert in bundle.experts
    }
    per_expert: Dict[str, Dict[str, float]] = {}
    for provenance, slice_samples in slices.items():
        name = provenance_to_name.get(provenance, provenance)
        per_expert[name] = feature_impact(slice_samples, tolerance)
    ordered = {
        name: per_expert[name] for name in sorted(per_expert)
    }
    return FeatureImpactResult(
        per_expert=ordered,
        averaged=average_impact(list(ordered.values())),
    )
