"""Shared experiment infrastructure: policy factories and run drivers.

All figure drivers funnel through :func:`run_target` /
:func:`compare_policies`, which enforce the paper's protocol: "The same
external workload is reproduced for all evaluated policies in all cases"
— identical seeds, workload sets and availability schedules across
policies, with only the target's policy varying.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.policies import (
    AnalyticPolicy,
    DefaultPolicy,
    MixturePolicy,
    MonolithicPolicy,
    OfflinePolicy,
    OnlineHillClimbPolicy,
    ThreadPolicy,
)
from ..core.features import NUM_FEATURES
from ..core.selector import HyperplaneSelector
from ..core.training import (
    ExpertBundle,
    TrainingConfig,
    default_experts,
    pretrain_selector_state,
    scale_program,
    training_dataset,
)
from ..exec import (
    Executor,
    FailureReport,
    PolicySpec,
    RunRequest,
    RunSummary,
    WorkloadSpec,
    resolve_jobs,
)
from ..machine.affinity import AffinityPolicy
from ..machine.machine import SimMachine
from ..machine.topology import Topology, XEON_L7555
from ..programs import registry
from ..runtime.engine import CoExecutionEngine, JobSpec, SimulationResult
from ..runtime.metrics import harmonic_mean
from ..workload.spec import WorkloadSet, workload_sets
from .scenarios import Scenario

#: Order in which the paper lists policies in every figure.
POLICY_ORDER = ("default", "online", "offline", "analytic", "mixture")

PolicyFactory = Callable[[], ThreadPolicy]


def mixture_factory(
    bundle: ExpertBundle,
    config: TrainingConfig = TrainingConfig(),
    pretrained: bool = True,
) -> PolicyFactory:
    """Factory for MixturePolicy instances over a bundle's experts.

    With ``pretrained`` (the default) the selector starts from the
    partition learnt offline on the training data and keeps adapting
    online; without it, selection starts from the paper's blind even
    partition (used by the ablation benchmarks).
    """
    if pretrained:
        samples, _ = training_dataset(config)
        state = pretrain_selector_state(bundle.experts, samples)
    else:
        state = None

    def make() -> MixturePolicy:
        selector = HyperplaneSelector(
            num_experts=len(bundle.experts), dim=NUM_FEATURES,
        )
        if state is not None:
            selector.load_state(state)
        return MixturePolicy(bundle.experts, selector=selector)

    return make


def cgo13_config(config: TrainingConfig = TrainingConfig()) -> TrainingConfig:
    """Training setup of the paper's "Offline" baseline (CGO'13).

    That model was trained for one platform, without hardware variation,
    and against at most a small multiprogrammed workload — the paper
    faults exactly this: "The offline technique ... is limited by its
    workload training and cannot adapt to new environments" / the
    offline model is "unable to adjust to the changing hardware
    resources".
    """
    from ..machine.topology import XEON_L7555 as _X

    return replace(
        config,
        platform_names=(_X.name,),
        availability_levels=(1.0,),
        workload_bundles=(("is", "cg", "ft"),),
    )


def standard_policies(
    config: TrainingConfig = TrainingConfig(),
) -> Dict[str, PolicyFactory]:
    """Fresh-instance factories for the five evaluated policies.

    The offline baseline is the CGO'13 analogue: one model, trained on
    the evaluation platform at full availability (no hardware-variation
    data — see :func:`cgo13_config`).  The mixture uses the four
    Section 5.1 experts with a selector pre-seeded on its training data.
    """
    bundle = default_experts(config, granularity=4)
    offline = default_experts(cgo13_config(config), granularity=1)
    return {
        "default": DefaultPolicy,
        "online": OnlineHillClimbPolicy,
        "offline": lambda: OfflinePolicy(
            offline.experts[0].with_envelope_margin(0.5)
        ),
        "analytic": AnalyticPolicy,
        "mixture": mixture_factory(bundle, config),
    }


@dataclass
class RunOutcome:
    """One co-execution run's headline numbers.

    ``result`` carries the full tick timeline only when the run executed
    in-process through :func:`run_target`; outcomes assembled from the
    parallel/memoised executor path hold the slim summary numbers and
    ``result=None``.
    """

    target: str
    policy: str
    target_time: float
    workload_throughput: float
    result: Optional[SimulationResult] = None


def run_target(
    target_name: str,
    policy: ThreadPolicy,
    scenario: Scenario,
    workload_set: Optional[WorkloadSet] = None,
    seed: int = 0,
    topology: Topology = XEON_L7555,
    iterations_scale: float = 1.0,
    target_affinity: Optional[AffinityPolicy] = None,
    workload_affinity: Optional[AffinityPolicy] = None,
    workload_policy_factory: PolicyFactory = DefaultPolicy,
    dt: float = 0.1,
    max_time: float = 3600.0,
    stepping: str = "event",
    timeline_period: Optional[float] = None,
) -> RunOutcome:
    """Run one target under one policy in one scenario.

    ``timeline_period`` defaults to ``None`` (no timeline sampling),
    matching the executor's request path bit-for-bit; pass a period when
    the caller consumes ``result.timeline`` (e.g. the energy model).
    """
    target = registry.get(target_name)
    if iterations_scale != 1.0:
        target = scale_program(target, iterations_scale)
    machine = SimMachine(
        topology=topology,
        availability=scenario.availability(topology, seed=seed),
    )
    jobs = [JobSpec(
        program=target,
        policy=policy,
        job_id="target",
        is_target=True,
        affinity=target_affinity,
    )]
    if workload_set is not None:
        for index, program in enumerate(workload_set.programs()):
            if iterations_scale != 1.0:
                program = scale_program(program, iterations_scale)
            jobs.append(JobSpec(
                program=program,
                policy=workload_policy_factory(),
                job_id=f"w{index}-{program.name}",
                restart=True,
                affinity=workload_affinity,
            ))
    engine = CoExecutionEngine(
        machine=machine, jobs=jobs, dt=dt, max_time=max_time,
        stepping=stepping, timeline_period=timeline_period,
    )
    result = engine.run()
    if result.target_time is None:
        raise RuntimeError(
            f"run timed out: {target_name} / {policy.name} / "
            f"{scenario.name}"
        )
    return RunOutcome(
        target=target_name,
        policy=policy.name,
        target_time=result.target_time,
        workload_throughput=result.workload_throughput,
        result=result,
    )


@dataclass
class PolicyComparison:
    """One target's results across all policies in one scenario.

    ``speedups`` are vs the default policy, harmonically averaged over
    (workload set x repetition) configurations, matching the paper's
    averaging ("All results are averaged over these different benchmark
    sets", hmean per Section 7).
    """

    target: str
    scenario: str
    speedups: Dict[str, float]
    times: Dict[str, float]
    workload_gains: Dict[str, float]
    #: Raw per-configuration outcomes, keyed by policy name.
    outcomes: Dict[str, List[RunOutcome]] = field(default_factory=dict)
    #: Fault-tolerance account of the executor invocation that produced
    #: this comparison (retries, pool rebuilds, quarantines …); ``None``
    #: for comparisons assembled outside the executor path.
    failure_report: Optional[FailureReport] = None


def _scenario_sets(scenario: Scenario) -> Tuple[Optional[WorkloadSet], ...]:
    if scenario.workload_size is None:
        return (None,)
    return workload_sets(scenario.workload_size)


def _comparison_requests(
    target_name: str,
    scenario: Scenario,
    specs: Dict[str, PolicySpec],
    seeds: Sequence[int],
    topology: Topology,
    iterations_scale: float,
    target_affinity: Optional[AffinityPolicy],
    workload_affinity: Optional[AffinityPolicy],
    max_time: float,
    stepping: str = "event",
) -> List[RunRequest]:
    """The request batch for one comparison, in sets x seeds x policies
    order (the same workload/seed configuration for every policy, per the
    paper's protocol)."""
    workload_policy = PolicySpec.of(DefaultPolicy, label="default")
    requests: List[RunRequest] = []
    for workload_set in _scenario_sets(scenario):
        workload = (
            WorkloadSpec.from_set(workload_set, workload_policy)
            if workload_set is not None else None
        )
        for seed in seeds:
            for spec in specs.values():
                requests.append(RunRequest(
                    target=target_name,
                    policy=spec,
                    scenario=scenario,
                    workload=workload,
                    seed=seed,
                    topology=topology,
                    iterations_scale=iterations_scale,
                    max_time=max_time,
                    target_affinity=target_affinity,
                    workload_affinity=workload_affinity,
                    stepping=stepping,
                ))
    return requests


def _assemble_comparison(
    target_name: str,
    scenario: Scenario,
    policy_names: Sequence[str],
    summaries: Sequence[RunSummary],
) -> PolicyComparison:
    """Fold one comparison's summaries (sets x seeds x policies order)
    back into the per-policy outcome lists and figure statistics."""
    outcomes: Dict[str, List[RunOutcome]] = {name: [] for name in policy_names}
    for index, summary in enumerate(summaries):
        name = policy_names[index % len(policy_names)]
        outcomes[name].append(RunOutcome(
            target=target_name,
            policy=summary.policy,
            target_time=summary.target_time,
            workload_throughput=summary.workload_throughput,
        ))

    policies = policy_names
    configs = range(len(outcomes["default"]))
    speedups = {}
    times = {}
    workload_gains = {}
    for name in policies:
        per_config = [
            outcomes["default"][i].target_time
            / outcomes[name][i].target_time
            for i in configs
        ]
        speedups[name] = harmonic_mean(per_config)
        times[name] = sum(o.target_time for o in outcomes[name]) / len(
            outcomes[name]
        )
        gains = []
        for i in configs:
            base = outcomes["default"][i].workload_throughput
            ours = outcomes[name][i].workload_throughput
            if base > 0 and ours > 0:
                gains.append(ours / base)
        workload_gains[name] = (
            harmonic_mean(gains) if gains else 1.0
        )
    return PolicyComparison(
        target=target_name,
        scenario=scenario.name,
        speedups=speedups,
        times=times,
        workload_gains=workload_gains,
        outcomes=outcomes,
    )


def compare_policies(
    target_name: str,
    scenario: Scenario,
    policies: Dict[str, PolicyFactory],
    seeds: Sequence[int] = (0, 1),
    topology: Topology = XEON_L7555,
    iterations_scale: float = 1.0,
    target_affinity: Optional[AffinityPolicy] = None,
    workload_affinity: Optional[AffinityPolicy] = None,
    max_time: float = 3600.0,
    executor: Optional[Executor] = None,
    jobs: Optional[int] = None,
    stepping: str = "event",
    batch: Union[str, bool, None] = "default",
) -> PolicyComparison:
    """Evaluate all policies on one target in one scenario.

    Runs go through the :mod:`repro.exec` layer: spread over the
    executor's worker pool (``jobs``/``REPRO_JOBS``; default serial),
    optionally batched through shared SoA kernel invocations
    (``batch``/``REPRO_BATCH``; physics stays bit-identical) and
    memoised on disk, while keeping the paper's protocol — identical
    workload sets, seeds and availability schedules across policies.
    """
    if "default" not in policies:
        raise ValueError("policies must include the 'default' baseline")
    if executor is None:
        executor = Executor(jobs=resolve_jobs(jobs), batch=batch)
    specs = {
        name: PolicySpec.of(factory, label=name)
        for name, factory in policies.items()
    }
    requests = _comparison_requests(
        target_name, scenario, specs, seeds, topology,
        iterations_scale, target_affinity, workload_affinity, max_time,
        stepping=stepping,
    )
    summaries = executor.run(requests)
    comparison = _assemble_comparison(
        target_name, scenario, list(specs), summaries,
    )
    comparison.failure_report = executor.last_report
    return comparison


@dataclass
class ScenarioTable:
    """Per-benchmark speedups plus the hmean row (one paper figure)."""

    scenario: str
    rows: List[PolicyComparison]
    #: Fault-tolerance account of the whole batch (see
    #: :class:`repro.exec.FailureReport`); ``None`` outside the
    #: executor path.
    failure_report: Optional[FailureReport] = None

    def policies(self) -> List[str]:
        return list(self.rows[0].speedups) if self.rows else []

    def hmean(self) -> Dict[str, float]:
        return {
            name: harmonic_mean([row.speedups[name] for row in self.rows])
            for name in self.policies()
        }

    def workload_hmean(self) -> Dict[str, float]:
        return {
            name: harmonic_mean(
                [row.workload_gains[name] for row in self.rows]
            )
            for name in self.policies()
        }

    def format(self) -> str:
        """Render the table the way the figures print it."""
        names = self.policies()
        header = f"{'benchmark':14s}" + "".join(
            f"{n:>11s}" for n in names
        )
        lines = [f"== scenario: {self.scenario} ==", header]
        for row in self.rows:
            lines.append(
                f"{row.target:14s}"
                + "".join(f"{row.speedups[n]:11.2f}" for n in names)
            )
        hm = self.hmean()
        lines.append(
            f"{'hmean':14s}" + "".join(f"{hm[n]:11.2f}" for n in names)
        )
        if self.failure_report is not None and not (
            self.failure_report.clean
        ):
            lines.append(f"[faults: {self.failure_report.summary()}]")
        return "\n".join(lines)


def evaluate_scenario(
    scenario: Scenario,
    targets: Sequence[str],
    policies: Optional[Dict[str, PolicyFactory]] = None,
    seeds: Sequence[int] = (0, 1),
    iterations_scale: float = 1.0,
    topology: Topology = XEON_L7555,
    executor: Optional[Executor] = None,
    jobs: Optional[int] = None,
    stepping: str = "event",
    batch: Union[str, bool, None] = "default",
) -> ScenarioTable:
    """One full per-benchmark figure (Figures 7, 9-12).

    All targets' runs are submitted as a single list so the worker pool
    stays saturated across row boundaries — and so the batch planner
    sees the whole grid at once when batching is enabled.
    """
    if policies is None:
        policies = standard_policies()
    if "default" not in policies:
        raise ValueError("policies must include the 'default' baseline")
    if executor is None:
        executor = Executor(jobs=resolve_jobs(jobs), batch=batch)
    specs = {
        name: PolicySpec.of(factory, label=name)
        for name, factory in policies.items()
    }
    requests: List[RunRequest] = []
    for target in targets:
        requests.extend(_comparison_requests(
            target, scenario, specs, seeds, topology,
            iterations_scale, None, None, 3600.0,
            stepping=stepping,
        ))
    summaries = executor.run(requests)
    chunk = len(_scenario_sets(scenario)) * len(seeds) * len(specs)
    rows = [
        _assemble_comparison(
            target, scenario, list(specs),
            summaries[i * chunk:(i + 1) * chunk],
        )
        for i, target in enumerate(targets)
    ]
    return ScenarioTable(
        scenario=scenario.name,
        rows=rows,
        failure_report=executor.last_report,
    )
