"""Thread affinity (Figure 14b, Result 6 / Section 7.6).

"Here we combine affinity scheduling with each of the thread selection
policies ... in the small workload scenario ... All schemes show
improvement with affinity scheduling but our approach gives the largest
improvement."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..machine.affinity import CompactAffinity, NoAffinity
from ..runtime.metrics import harmonic_mean
from .runner import PolicyFactory, compare_policies, standard_policies
from .scenarios import EVALUATION_TARGETS, SMALL_LOW, Scenario


@dataclass
class AffinityResult:
    """Figure 14b: per-policy speedups with and without affinity."""

    without_affinity: Dict[str, float]
    with_affinity: Dict[str, float]

    def improvement(self) -> Dict[str, float]:
        """Relative gain each policy gets from affinity scheduling."""
        return {
            policy: self.with_affinity[policy] / self.without_affinity[policy]
            for policy in self.without_affinity
        }

    def format(self) -> str:
        lines = ["== Figure 14b: affinity scheduling =="]
        lines.append(
            f"{'policy':12s}{'no-affinity':>12s}{'affinity':>10s}"
            f"{'gain':>7s}"
        )
        gains = self.improvement()
        for policy in self.without_affinity:
            lines.append(
                f"{policy:12s}{self.without_affinity[policy]:12.2f}"
                f"{self.with_affinity[policy]:10.2f}{gains[policy]:7.2f}"
            )
        return "\n".join(lines)


def run_affinity(
    targets: Sequence[str] = EVALUATION_TARGETS,
    policies: Optional[Dict[str, PolicyFactory]] = None,
    scenario: Scenario = SMALL_LOW,
    iterations_scale: float = 1.0,
    seeds: Sequence[int] = (0,),
) -> AffinityResult:
    """Run the small-workload scenario with and without affinity.

    Speedups in *both* columns are measured against the no-affinity
    OpenMP default, so the with-affinity column shows the combined
    effect (the paper's 2.1x overall number for the mixture).
    """
    if policies is None:
        policies = standard_policies()
    compact = CompactAffinity()

    plain: Dict[str, list] = {name: [] for name in policies}
    pinned: Dict[str, list] = {name: [] for name in policies}
    for target in targets:
        base = compare_policies(
            target, scenario, policies,
            seeds=seeds, iterations_scale=iterations_scale,
        )
        bound = compare_policies(
            target, scenario, policies,
            seeds=seeds, iterations_scale=iterations_scale,
            target_affinity=compact,
        )
        # Rebase the affinity run onto the *no-affinity* default time.
        for name in policies:
            plain[name].append(base.speedups[name])
            pinned[name].append(
                base.times["default"] / bound.times[name]
            )
    return AffinityResult(
        without_affinity={
            name: harmonic_mean(vals) for name, vals in plain.items()
        },
        with_affinity={
            name: harmonic_mean(vals) for name, vals in pinned.items()
        },
    )
