"""Real-world case study (Figure 14a, Result 5 / Section 7.5).

The Figure 1 live pattern is replayed on the Table 2 platform: workload
thread demand is scaled down in proportion to the machine size, and a
hardware failure removes half the processors for two (scaled) hours.
The workload itself is driven by a synthetic "trace player" program
whose thread counts follow the scaled demand.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.policies.base import PolicyContext, ThreadPolicy
from ..core.training import scale_program
from ..machine.availability import FailureWindow, StaticAvailability
from ..machine.machine import SimMachine
from ..machine.topology import XEON_L7555
from ..programs import registry
from ..runtime.engine import CoExecutionEngine, JobSpec
from ..runtime.metrics import harmonic_mean
from ..workload.trace import LiveTrace, generate_live_trace
from .runner import PolicyFactory, standard_policies
from .scenarios import EVALUATION_TARGETS

#: The case study compresses the 50 h trace into this many simulated
#: seconds, so target programs experience the full demand shape.
DEFAULT_REPLAY_DURATION = 400.0


class TracePlayerPolicy(ThreadPolicy):
    """Thread counts follow a (time, threads) schedule.

    Drives the workload program of the case study: its parallelism is
    whatever the scaled-down live trace says the system demand was.
    """

    name = "trace-player"

    def __init__(self, schedule: Sequence[Tuple[float, int]]):
        if not schedule:
            raise ValueError("schedule must not be empty")
        self._times = [t for t, _ in schedule]
        self._threads = [n for _, n in schedule]

    def select(self, ctx: PolicyContext) -> int:
        index = bisect.bisect_right(self._times, ctx.time) - 1
        if index < 0:
            index = 0
        return ctx.clamp(max(1, self._threads[index]))


@dataclass
class LiveCaseStudyResult:
    """Figure 14a: speedups in the replayed live scenario."""

    speedups: Dict[str, Dict[str, float]]  # target -> policy -> speedup

    def overall(self) -> Dict[str, float]:
        policies = next(iter(self.speedups.values())).keys()
        return {
            policy: harmonic_mean([
                per_policy[policy]
                for per_policy in self.speedups.values()
            ])
            for policy in policies
        }

    def format(self) -> str:
        lines = ["== Figure 14a: live-system case study =="]
        overall = self.overall()
        lines.append(f"{'policy':12s}{'speedup':>9s}")
        for policy, value in overall.items():
            lines.append(f"{policy:12s}{value:9.2f}")
        return "\n".join(lines)


def scaled_schedule(
    trace: LiveTrace,
    replay_duration: float,
    max_processors: int,
) -> List[Tuple[float, int]]:
    """Scale the live trace down in threads *and* time."""
    scaled = trace.scale_down(max_processors)
    if not scaled:
        raise ValueError("empty trace")
    t_end = scaled[-1][0] or 1.0
    return [
        (time / t_end * replay_duration, threads)
        for time, threads in scaled
    ]


def run_live_case_study(
    targets: Sequence[str] = EVALUATION_TARGETS,
    policies: Optional[Dict[str, PolicyFactory]] = None,
    iterations_scale: float = 1.0,
    replay_duration: float = DEFAULT_REPLAY_DURATION,
    seed: int = 2015,
) -> LiveCaseStudyResult:
    """Figure 14a: all policies under the replayed live pattern."""
    if policies is None:
        policies = standard_policies()
    trace = generate_live_trace(seed=seed)
    schedule = scaled_schedule(
        trace, replay_duration, XEON_L7555.cores,
    )
    # "there was a hardware failure such that half of the processors
    # were unavailable for 2 hours" — 2/50ths of the replay window.
    failure_start = 0.55 * replay_duration
    failure_end = failure_start + replay_duration * (2.0 / 50.0) * 5.0
    availability = FailureWindow(
        base=StaticAvailability(XEON_L7555.cores),
        start=failure_start,
        end=failure_end,
    )

    speedups: Dict[str, Dict[str, float]] = {}
    for target_name in targets:
        target = registry.get(target_name)
        if iterations_scale != 1.0:
            target = scale_program(target, iterations_scale)
        workload = registry.get("mg")
        if iterations_scale != 1.0:
            workload = scale_program(workload, iterations_scale)
        times = {}
        for name, factory in policies.items():
            machine = SimMachine(
                topology=XEON_L7555, availability=availability,
            )
            engine = CoExecutionEngine(
                machine=machine,
                jobs=[
                    JobSpec(program=target, policy=factory(),
                            job_id="target", is_target=True),
                    JobSpec(program=workload,
                            policy=TracePlayerPolicy(schedule),
                            job_id="trace-player", restart=True),
                ],
                max_time=7200.0,
            )
            result = engine.run()
            if result.target_time is None:
                raise RuntimeError(
                    f"case-study run timed out: {target_name}/{name}"
                )
            times[name] = result.target_time
        speedups[target_name] = {
            name: times["default"] / t for name, t in times.items()
        }
    return LiveCaseStudyResult(speedups=speedups)
