"""Dynamic-environment evaluation (Figures 8-12) and the static case
(Figure 7).

Figure 7: every policy on an isolated, static 32-core system.
Figures 9-12: per-benchmark speedups for each of the four dynamic
scenarios.  Figure 8: the cross-scenario summary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from ..core.training import TrainingConfig
from ..runtime.metrics import harmonic_mean, median
from ..exec import Executor, resolve_jobs
from .runner import (
    PolicyFactory,
    ScenarioTable,
    evaluate_scenario,
    standard_policies,
)
from .scenarios import (
    DYNAMIC_SCENARIOS,
    EVALUATION_TARGETS,
    STATIC_ISOLATED,
    Scenario,
)


def run_static_isolated(
    targets: Sequence[str] = EVALUATION_TARGETS,
    policies: Optional[Dict[str, PolicyFactory]] = None,
    iterations_scale: float = 1.0,
    seeds: Sequence[int] = (0,),
    executor: Optional[Executor] = None,
    jobs: Optional[int] = None,
    batch: Union[str, bool, None] = "default",
) -> ScenarioTable:
    """Figure 7: isolated static system."""
    if policies is None:
        policies = standard_policies()
    if executor is None:
        executor = Executor(jobs=resolve_jobs(jobs), batch=batch)
    return evaluate_scenario(
        STATIC_ISOLATED, targets, policies,
        seeds=seeds, iterations_scale=iterations_scale,
        executor=executor,
    )


def run_dynamic_scenario(
    scenario: Scenario,
    targets: Sequence[str] = EVALUATION_TARGETS,
    policies: Optional[Dict[str, PolicyFactory]] = None,
    iterations_scale: float = 1.0,
    seeds: Sequence[int] = (0, 1),
    executor: Optional[Executor] = None,
    jobs: Optional[int] = None,
    batch: Union[str, bool, None] = "default",
) -> ScenarioTable:
    """One of Figures 9-12."""
    if policies is None:
        policies = standard_policies()
    if executor is None:
        executor = Executor(jobs=resolve_jobs(jobs), batch=batch)
    return evaluate_scenario(
        scenario, targets, policies,
        seeds=seeds, iterations_scale=iterations_scale,
        executor=executor,
    )


@dataclass
class DynamicSummary:
    """Figure 8: summary across the four dynamic scenarios."""

    tables: Dict[str, ScenarioTable]

    def scenario_hmeans(self) -> Dict[str, Dict[str, float]]:
        """Per-scenario hmean speedups, keyed scenario -> policy."""
        return {name: table.hmean() for name, table in self.tables.items()}

    def overall(self) -> Dict[str, float]:
        """Overall hmean per policy across scenarios and benchmarks."""
        policies = next(iter(self.tables.values())).policies()
        return {
            policy: harmonic_mean([
                row.speedups[policy]
                for table in self.tables.values()
                for row in table.rows
            ])
            for policy in policies
        }

    def overall_median(self) -> Dict[str, float]:
        """The paper also quotes the median (1.54x for the mixture)."""
        policies = next(iter(self.tables.values())).policies()
        return {
            policy: median([
                row.speedups[policy]
                for table in self.tables.values()
                for row in table.rows
            ])
            for policy in policies
        }

    def format(self) -> str:
        policies = next(iter(self.tables.values())).policies()
        lines = ["== Figure 8: dynamic-environment summary =="]
        header = f"{'scenario':14s}" + "".join(
            f"{p:>11s}" for p in policies
        )
        lines.append(header)
        for name, hm in self.scenario_hmeans().items():
            lines.append(
                f"{name:14s}" + "".join(f"{hm[p]:11.2f}" for p in policies)
            )
        overall = self.overall()
        med = self.overall_median()
        lines.append(
            f"{'overall hmean':14s}"
            + "".join(f"{overall[p]:11.2f}" for p in policies)
        )
        lines.append(
            f"{'overall median':14s}"
            + "".join(f"{med[p]:11.2f}" for p in policies)
        )
        return "\n".join(lines)


def run_dynamic_summary(
    targets: Sequence[str] = EVALUATION_TARGETS,
    policies: Optional[Dict[str, PolicyFactory]] = None,
    iterations_scale: float = 1.0,
    seeds: Sequence[int] = (0, 1),
    scenarios: Sequence[Scenario] = DYNAMIC_SCENARIOS,
    executor: Optional[Executor] = None,
    jobs: Optional[int] = None,
    batch: Union[str, bool, None] = "default",
) -> DynamicSummary:
    """Figure 8 (and the underlying Figures 9-12 tables).

    All scenarios share one executor, so the run cache, the worker
    pool and the batch planner persist across the four tables.
    """
    if policies is None:
        policies = standard_policies()
    if executor is None:
        executor = Executor(jobs=resolve_jobs(jobs), batch=batch)
    tables = {
        scenario.name: run_dynamic_scenario(
            scenario, targets, policies,
            iterations_scale=iterations_scale, seeds=seeds,
            executor=executor,
        )
        for scenario in scenarios
    }
    return DynamicSummary(tables=tables)
