"""Benchmark registry: lookup by name, suite, or paper alias."""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List

from . import nas, parsec, rodinia, spec
from .model import ProgramModel

#: Short names the paper's figures use for some Parsec programs.
ALIASES = {
    "bscholes": "blackscholes",
    "btrack": "bodytrack",
    "fmine": "freqmine",
    "fanimate": "fluidanimate",
    # The small workload set lists "fft"; NAS's FFT code is ft.
    "fft": "ft",
}


@lru_cache(maxsize=None)
def _catalog() -> Dict[str, ProgramModel]:
    catalog: Dict[str, ProgramModel] = {}
    for suite_programs in (nas.programs(), spec.programs(),
                           parsec.programs(), rodinia.programs()):
        for program in suite_programs:
            if program.name in catalog:
                raise ValueError(
                    f"duplicate benchmark name {program.name!r}"
                )
            catalog[program.name] = program
    return catalog


def canonical_name(name: str) -> str:
    """Resolve a paper alias to the canonical benchmark name."""
    return ALIASES.get(name, name)


def get(name: str) -> ProgramModel:
    """Look up a program model by name or paper alias."""
    catalog = _catalog()
    resolved = canonical_name(name)
    try:
        return catalog[resolved]
    except KeyError:
        known = ", ".join(sorted(catalog))
        raise KeyError(
            f"unknown benchmark {name!r}; known: {known}"
        ) from None


def all_programs() -> List[ProgramModel]:
    """Every benchmark, across all suites."""
    return list(_catalog().values())


def suite(suite_name: str) -> List[ProgramModel]:
    """All benchmarks of one suite ('nas', 'spec', 'parsec', 'rodinia')."""
    programs = [p for p in _catalog().values() if p.suite == suite_name]
    if not programs:
        raise KeyError(f"unknown suite {suite_name!r}")
    return programs


def suites() -> List[str]:
    """All suite names with at least one benchmark, sorted."""
    return sorted({p.suite for p in _catalog().values()})


def names() -> List[str]:
    """All canonical benchmark names, sorted."""
    return sorted(_catalog())
