"""Benchmark program models: NAS, SpecOMP and Parsec analogues."""

from .model import (
    ProgramInstance,
    ProgramModel,
    Region,
    build_program,
)
from .scaling import AmdahlScaling, ScalingModel, USLScaling, derive_scaling
from .registry import (
    ALIASES,
    all_programs,
    canonical_name,
    get,
    names,
    suite,
    suites,
)

__all__ = [
    "ALIASES",
    "AmdahlScaling",
    "ProgramInstance",
    "ProgramModel",
    "Region",
    "ScalingModel",
    "USLScaling",
    "all_programs",
    "build_program",
    "canonical_name",
    "derive_scaling",
    "get",
    "names",
    "suite",
    "suites",
]
