"""Parallel scaling laws.

A scaling model captures how efficiently a parallel region uses ``n``
threads when fully provisioned.  We use the Universal Scalability Law
(Gunther), which subsumes Amdahl's law and adds a coherence term that
makes speedup *retrograde* past a peak — the behaviour the paper relies
on ("spawning many threads slows down the program" for cg/mg/art):

    S(n) = n / (1 + sigma*(n - 1) + kappa*n*(n - 1))

``sigma`` models contention/serialisation, ``kappa`` models coherence
and synchronisation (barriers, atomics).  Parameters are **derived from
the IR** of each region (memory intensity -> sigma, synchronisation
intensity and irregular access -> kappa), so program behaviour follows
causally from the code the feature extractor sees.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

from ..compiler.ir import AccessPattern
from ..compiler.passes import LoopAnalysis


class ScalingModel(Protocol):
    """Speedup of a region as a function of fully-provisioned threads."""

    def speedup(self, threads: int) -> float:
        ...

    def efficiency(self, threads: int) -> float:
        """Per-thread efficiency, ``speedup(n)/n``."""
        ...


@dataclass(frozen=True)
class AmdahlScaling:
    """Classic Amdahl's law with serial fraction ``serial_fraction``."""

    serial_fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.serial_fraction <= 1.0:
            raise ValueError("serial_fraction must be in [0, 1]")

    def speedup(self, threads: int) -> float:
        if threads < 1:
            raise ValueError("threads must be >= 1")
        s = self.serial_fraction
        return 1.0 / (s + (1.0 - s) / threads)

    def efficiency(self, threads: int) -> float:
        return self.speedup(threads) / threads


@dataclass(frozen=True)
class USLScaling:
    """Universal Scalability Law."""

    sigma: float
    kappa: float

    def __post_init__(self) -> None:
        if self.sigma < 0 or self.kappa < 0:
            raise ValueError("sigma and kappa must be non-negative")

    def speedup(self, threads: int) -> float:
        if threads < 1:
            raise ValueError("threads must be >= 1")
        n = float(threads)
        return n / (1.0 + self.sigma * (n - 1.0)
                    + self.kappa * n * (n - 1.0))

    def efficiency(self, threads: int) -> float:
        # Memoised per instance: the engine evaluates this once per job
        # per tick with thread counts from a handful of values, and the
        # result is a pure function of (sigma, kappa, threads).  Scaling
        # objects are shared through the program registry, so the memo
        # also persists across runs in one process.
        cache = self.__dict__.get("_efficiency_memo")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_efficiency_memo", cache)
        value = cache.get(threads)
        if value is None:
            value = self.speedup(threads) / threads
            cache[threads] = value
        return value

    @property
    def peak_threads(self) -> int:
        """Thread count maximising speedup (USL closed form)."""
        if self.kappa == 0.0:
            return 10 ** 9  # monotone: effectively unbounded
        n_star = math.sqrt((1.0 - self.sigma) / self.kappa)
        return max(1, int(round(n_star)))


def derive_scaling(analysis: LoopAnalysis) -> USLScaling:
    """Derive USL parameters from a loop's static analysis.

    Calibration targets (checked by tests):

    * an embarrassingly parallel, compute-bound loop (ep, blackscholes)
      scales near-linearly to 32+ threads;
    * a memory-bound, irregular, barrier-heavy loop (cg, mg, art) peaks
      well below 32 threads and degrades beyond the peak;
    * everything else lands in between (the "scalable iff speedup >= P/4"
      split of Section 5.1 produces both classes on both platforms).
    """
    mem = analysis.memory_intensity
    sync = analysis.sync_intensity
    sigma = 0.005 + 0.22 * mem * mem
    kappa = 0.00005 + 0.025 * sync
    if analysis.access_pattern is AccessPattern.IRREGULAR:
        sigma += 0.045
        kappa += 0.0025
    elif analysis.access_pattern is AccessPattern.STRIDED:
        sigma += 0.01
    if analysis.has_reduction:
        kappa += 0.0002
    return USLScaling(sigma=sigma, kappa=kappa)
