"""Rodinia-style benchmarks (a fourth, evaluation-only suite).

The paper evaluates on programs from suites never used in training
(SpecOMP, Parsec); this suite pushes the same generality test further
with the OpenMP ports of classic Rodinia kernels.  Characters follow
the published Rodinia characterisation:

* ``kmeans``        — distance computation dominates: compute-heavy
  with a reduction per iteration; scales well.
* ``bfs``           — frontier expansion: pointer chasing, highly
  irregular, atomics on the visited set; scales poorly.
* ``hotspot``       — structured 2-D stencil: bandwidth-bound but
  regular, barrier per time step.
* ``lud``           — dense LU decomposition: compute-bound inner
  kernels with barrier-separated phases.
* ``nw``            — Needleman-Wunsch wavefront: short dependent
  phases, synchronisation-limited.
* ``srad``          — speckle-reducing anisotropic diffusion: two
  stencil sweeps plus a reduction; moderate memory intensity.
* ``streamcluster`` — online clustering: memory-bound scans with
  atomics; poor scaling beyond a few cores.
* ``backprop``      — neural-network training: dense matrix work,
  compute-bound layers with a barrier between them.
"""

from __future__ import annotations

from ..compiler.builder import IRBuilder
from ..compiler.ir import AccessPattern, Module, Schedule
from ._kernels import simple_region
from .model import ProgramModel, build_program

SUITE = "rodinia"


def _kmeans_module() -> Module:
    b = IRBuilder("kmeans")
    with b.function("cluster"):
        simple_region(
            b, "distance", trip_count=30_000,
            loads=4, fadds=12, fmuls=14, cmps=3, branches=2,
            reduction=True,
        )
        simple_region(
            b, "recenter", trip_count=6_000,
            loads=5, stores=3, fadds=6, fdivs=1, geps=2, reduces=1,
            barriers=1, reduction=True,
        )
    return b.build()


def _bfs_module() -> Module:
    b = IRBuilder("bfs")
    with b.function("traverse"):
        simple_region(
            b, "frontier", trip_count=18_000,
            access=AccessPattern.IRREGULAR, schedule=Schedule.DYNAMIC,
            loads=10, stores=3, geps=9, cmps=4, branches=4,
            atomics=2, barriers=1,
        )
    return b.build()


def _hotspot_module() -> Module:
    b = IRBuilder("hotspot")
    with b.function("step"):
        simple_region(
            b, "stencil", trip_count=16_000,
            access=AccessPattern.STRIDED,
            loads=11, stores=2, fadds=9, fmuls=7, geps=4, branches=1,
            barriers=1,
        )
    return b.build()


def _lud_module() -> Module:
    b = IRBuilder("lud")
    with b.function("decompose"):
        simple_region(
            b, "diagonal", trip_count=4_000,
            loads=6, stores=3, fadds=8, fmuls=10, fdivs=2, geps=2,
            barriers=1,
        )
        simple_region(
            b, "perimeter", trip_count=6_000,
            loads=7, stores=3, fadds=10, fmuls=12, geps=2, barriers=1,
        )
        simple_region(
            b, "internal", trip_count=9_000,
            loads=6, stores=2, fadds=12, fmuls=14, geps=2,
        )
    return b.build()


def _nw_module() -> Module:
    b = IRBuilder("nw")
    with b.function("wavefront"):
        simple_region(
            b, "diagonal_sweep", trip_count=10_000,
            access=AccessPattern.STRIDED,
            loads=8, stores=3, adds=4, cmps=4, branches=3, geps=4,
            barriers=2,
        )
    return b.build()


def _srad_module() -> Module:
    b = IRBuilder("srad")
    with b.function("diffuse"):
        simple_region(
            b, "gradient", trip_count=12_000,
            access=AccessPattern.STRIDED,
            loads=10, stores=2, fadds=8, fmuls=8, fdivs=1, geps=4,
            reduction=True, reduces=1,
        )
        simple_region(
            b, "update", trip_count=12_000,
            access=AccessPattern.STRIDED,
            loads=8, stores=3, fadds=7, fmuls=7, geps=4, barriers=1,
        )
    return b.build()


def _streamcluster_module() -> Module:
    b = IRBuilder("streamcluster")
    with b.function("pgain"):
        simple_region(
            b, "assign", trip_count=20_000,
            access=AccessPattern.IRREGULAR, schedule=Schedule.DYNAMIC,
            loads=12, stores=3, fadds=6, fmuls=6, geps=8, cmps=3,
            branches=3, atomics=1, barriers=1,
        )
    return b.build()


def _backprop_module() -> Module:
    b = IRBuilder("backprop")
    with b.function("train"):
        simple_region(
            b, "forward", trip_count=14_000,
            loads=5, stores=2, fadds=12, fmuls=14, geps=2, barriers=1,
        )
        simple_region(
            b, "backward", trip_count=12_000,
            loads=6, stores=3, fadds=10, fmuls=12, geps=2, barriers=1,
        )
    return b.build()


def programs() -> list[ProgramModel]:
    """All Rodinia program models."""
    return [
        build_program("kmeans", SUITE, _kmeans_module(), iterations=72,
                      work_per_iteration=3.6, serial_fraction=0.02),
        build_program("bfs", SUITE, _bfs_module(), iterations=80,
                      work_per_iteration=2.4, serial_fraction=0.04),
        build_program("hotspot", SUITE, _hotspot_module(),
                      iterations=90, work_per_iteration=2.8,
                      serial_fraction=0.02),
        build_program("lud", SUITE, _lud_module(), iterations=70,
                      work_per_iteration=3.4, serial_fraction=0.02),
        build_program("nw", SUITE, _nw_module(), iterations=84,
                      work_per_iteration=2.2, serial_fraction=0.03),
        build_program("srad", SUITE, _srad_module(), iterations=76,
                      work_per_iteration=3.0, serial_fraction=0.02),
        build_program("streamcluster", SUITE, _streamcluster_module(),
                      iterations=72, work_per_iteration=2.6,
                      serial_fraction=0.04),
        build_program("backprop", SUITE, _backprop_module(),
                      iterations=68, work_per_iteration=3.2,
                      serial_fraction=0.02),
    ]
