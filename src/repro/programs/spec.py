"""SpecOMP benchmarks (the C-language subset the paper evaluates).

* ``ammp``   — molecular dynamics: compute-heavy force loops with a
  critical section for neighbour-list updates; decent scaling.
* ``art``    — adaptive resonance theory image recognition: small
  working set per neuron but irregular, memory-bound scans; the paper
  groups it with cg/mg as a code hurt by over-threading.
* ``equake`` — earthquake ground-motion: sparse matrix-vector kernels,
  memory-bound but regular enough to scale moderately.
"""

from __future__ import annotations

from ..compiler.builder import IRBuilder
from ..compiler.ir import AccessPattern, Module, Schedule
from ._kernels import simple_region
from .model import ProgramModel, build_program

SUITE = "spec"


def _ammp_module() -> Module:
    b = IRBuilder("ammp")
    with b.function("mm_fv_update_nonbon"):
        simple_region(
            b, "force_loop", trip_count=24000,
            schedule=Schedule.GUIDED,
            loads=8, stores=3, fadds=14, fmuls=18, fdivs=2, sqrts=2,
            geps=3, cmps=2, branches=2,
        )
        simple_region(
            b, "neighbour_update", trip_count=5000,
            access=AccessPattern.IRREGULAR,
            loads=6, stores=2, adds=4, geps=4, cmps=3, branches=3,
            criticals=1,
        )
    return b.build()


def _art_module() -> Module:
    b = IRBuilder("art")
    with b.function("match"):
        simple_region(
            b, "f1_layer_scan", trip_count=16000,
            access=AccessPattern.IRREGULAR,
            loads=13, stores=2, fadds=6, fmuls=5, geps=7, cmps=3,
            branches=3, barriers=1,
        )
        simple_region(
            b, "y_winner", trip_count=9000,
            access=AccessPattern.IRREGULAR, reduction=True,
            loads=8, fadds=3, fmuls=2, cmps=3, branches=2, geps=4,
            reduces=1, barriers=1,
        )
    return b.build()


def _equake_module() -> Module:
    b = IRBuilder("equake")
    with b.function("smvp"):
        simple_region(
            b, "sparse_mv", trip_count=14000,
            access=AccessPattern.IRREGULAR,
            loads=11, stores=3, fadds=7, fmuls=7, geps=6, branches=1,
            barriers=1,
        )
        simple_region(
            b, "time_integration", trip_count=9000,
            loads=7, stores=4, fadds=8, fmuls=8, geps=2,
        )
    return b.build()


def programs() -> list[ProgramModel]:
    """All SpecOMP program models."""
    return [
        build_program("ammp", SUITE, _ammp_module(), iterations=70,
                      work_per_iteration=4.4, serial_fraction=0.02),
        build_program("art", SUITE, _art_module(), iterations=80,
                      work_per_iteration=2.75, serial_fraction=0.03),
        build_program("equake", SUITE, _equake_module(), iterations=72,
                      work_per_iteration=3.5, serial_fraction=0.03),
    ]
