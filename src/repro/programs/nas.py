"""NAS Parallel Benchmarks (OpenMP C translations), as program models.

The instruction mixes encode the published character of each code:

* ``ep``  — embarrassingly parallel pseudo-random number generation:
  almost pure floating point, no barriers, scales near-linearly.
* ``cg``  — conjugate gradient with sparse matrix-vector products:
  irregular gather-heavy memory accesses, a barrier per iteration;
  the paper singles it out as a code that slows down when over-threaded.
* ``mg``  — multigrid: memory-bound stencils over shrinking grids with
  frequent barriers; also called out by the paper.
* ``is``  — integer bucket sort: memory and atomic heavy, little FP.
* ``ft``  — 3-D FFT: strided memory, bandwidth-hungry but regular.
* ``bt``, ``sp``, ``lu`` — CFD pseudo-apps: multiple solver regions per
  timestep, moderate memory intensity, good but sub-linear scaling.

Work figures are core-seconds calibrated to class-B-like serial times,
scaled down so whole co-execution experiments simulate in seconds.
"""

from __future__ import annotations

from ..compiler.builder import IRBuilder
from ..compiler.ir import AccessPattern, Module, Schedule
from ._kernels import simple_region
from .model import ProgramModel, build_program

SUITE = "nas"


def _bt_module() -> Module:
    b = IRBuilder("bt")
    with b.function("adi"):
        simple_region(
            b, "compute_rhs", trip_count=4000,
            loads=10, stores=4, fadds=20, fmuls=24, geps=3, branches=1,
        )
        simple_region(
            b, "x_solve", trip_count=2500,
            loads=10, stores=6, fadds=12, fmuls=14, fdivs=2, geps=3,
            branches=1, barriers=1,
        )
        simple_region(
            b, "y_solve", trip_count=2500,
            loads=10, stores=6, fadds=12, fmuls=14, fdivs=2, geps=3,
            branches=1, barriers=1,
        )
        simple_region(
            b, "z_solve", trip_count=2500,
            loads=10, stores=6, fadds=12, fmuls=14, fdivs=2, geps=3,
            branches=1, barriers=1,
        )
        simple_region(
            b, "add", trip_count=3000,
            loads=5, stores=3, fadds=12, fmuls=4, geps=2,
        )
    return b.build()


def _cg_module() -> Module:
    b = IRBuilder("cg")
    with b.function("conj_grad"):
        simple_region(
            b, "spmv", trip_count=9000,
            access=AccessPattern.IRREGULAR,
            loads=15, stores=2, fadds=6, fmuls=6, geps=8, branches=2,
            barriers=1,
        )
        simple_region(
            b, "dot_product", trip_count=5000,
            access=AccessPattern.REGULAR, reduction=True,
            loads=4, fadds=2, fmuls=2, reduces=1, barriers=1,
        )
        simple_region(
            b, "axpy", trip_count=5000,
            loads=5, stores=2, fadds=2, fmuls=2, geps=1, barriers=1,
        )
    return b.build()


def _ep_module() -> Module:
    b = IRBuilder("ep")
    with b.function("embar"):
        simple_region(
            b, "random_pairs", trip_count=60000,
            loads=1, fadds=10, fmuls=14, sqrts=2, cmps=3, branches=3,
            adds=4, muls=4, reduction=True,
        )
    return b.build()


def _ft_module() -> Module:
    b = IRBuilder("ft")
    with b.function("fft3d"):
        simple_region(
            b, "cffts1", trip_count=5000,
            access=AccessPattern.STRIDED,
            loads=10, stores=8, fadds=10, fmuls=10, geps=4, branches=1,
        )
        simple_region(
            b, "cffts2", trip_count=5000,
            access=AccessPattern.STRIDED,
            loads=10, stores=8, fadds=10, fmuls=10, geps=4, branches=1,
            barriers=1,
        )
        simple_region(
            b, "evolve", trip_count=4000,
            loads=6, stores=4, fadds=4, fmuls=6, geps=2,
        )
    return b.build()


def _is_module() -> Module:
    b = IRBuilder("is")
    with b.function("rank"):
        simple_region(
            b, "bucket_count", trip_count=12000,
            access=AccessPattern.IRREGULAR, schedule=Schedule.DYNAMIC,
            loads=8, stores=4, adds=5, geps=6, cmps=2, branches=2,
            atomics=2, barriers=1,
        )
        simple_region(
            b, "key_scatter", trip_count=10000,
            access=AccessPattern.IRREGULAR,
            loads=7, stores=6, adds=4, geps=6, branches=1, barriers=1,
        )
    return b.build()


def _lu_module() -> Module:
    b = IRBuilder("lu")
    with b.function("ssor"):
        simple_region(
            b, "jacld", trip_count=3500,
            loads=12, stores=6, fadds=14, fmuls=16, fdivs=1, geps=3,
            branches=1,
        )
        simple_region(
            b, "blts", trip_count=3000,
            access=AccessPattern.STRIDED,
            loads=10, stores=5, fadds=10, fmuls=12, geps=3, branches=2,
            barriers=1,
        )
        simple_region(
            b, "buts", trip_count=3000,
            access=AccessPattern.STRIDED,
            loads=10, stores=5, fadds=10, fmuls=12, geps=3, branches=2,
            barriers=1,
        )
        simple_region(
            b, "rhs_update", trip_count=3500,
            loads=8, stores=4, fadds=8, fmuls=8, geps=2,
        )
    return b.build()


def _mg_module() -> Module:
    b = IRBuilder("mg")
    with b.function("mg3p"):
        simple_region(
            b, "resid", trip_count=8000,
            access=AccessPattern.STRIDED,
            loads=14, stores=3, fadds=10, fmuls=6, geps=6, branches=1,
            barriers=1,
        )
        simple_region(
            b, "psinv", trip_count=7000,
            access=AccessPattern.STRIDED,
            loads=13, stores=3, fadds=9, fmuls=6, geps=6, branches=1,
            barriers=1,
        )
        simple_region(
            b, "interp", trip_count=5000,
            access=AccessPattern.IRREGULAR,
            loads=10, stores=5, fadds=6, fmuls=3, geps=7, branches=2,
            barriers=1,
        )
    return b.build()


def _sp_module() -> Module:
    b = IRBuilder("sp")
    with b.function("adi"):
        simple_region(
            b, "compute_rhs", trip_count=4500,
            loads=9, stores=4, fadds=18, fmuls=20, geps=2, branches=1,
        )
        simple_region(
            b, "txinvr", trip_count=3000,
            loads=7, stores=4, fadds=12, fmuls=16, fdivs=1, geps=2,
        )
        simple_region(
            b, "x_solve", trip_count=2800,
            access=AccessPattern.STRIDED,
            loads=9, stores=5, fadds=10, fmuls=12, fdivs=2, geps=3,
            branches=1, barriers=1,
        )
        simple_region(
            b, "z_solve", trip_count=2800,
            access=AccessPattern.STRIDED,
            loads=9, stores=5, fadds=10, fmuls=12, fdivs=2, geps=3,
            branches=1, barriers=1,
        )
    return b.build()


def _build(name: str, module: Module, iterations: int,
           work_per_iteration: float, serial_fraction: float) -> ProgramModel:
    return build_program(
        name=name,
        suite=SUITE,
        module=module,
        iterations=iterations,
        work_per_iteration=work_per_iteration,
        serial_fraction=serial_fraction,
    )


def programs() -> list[ProgramModel]:
    """All NAS program models."""
    return [
        _build("bt", _bt_module(), iterations=96,
               work_per_iteration=3.5, serial_fraction=0.02),
        _build("cg", _cg_module(), iterations=90,
               work_per_iteration=2.7, serial_fraction=0.03),
        _build("ep", _ep_module(), iterations=160,
               work_per_iteration=2.0, serial_fraction=0.005),
        _build("ft", _ft_module(), iterations=72,
               work_per_iteration=4.0, serial_fraction=0.03),
        _build("is", _is_module(), iterations=66,
               work_per_iteration=3.0, serial_fraction=0.04),
        _build("lu", _lu_module(), iterations=104,
               work_per_iteration=3.25, serial_fraction=0.02),
        _build("mg", _mg_module(), iterations=84,
               work_per_iteration=3.3, serial_fraction=0.03),
        _build("sp", _sp_module(), iterations=96,
               work_per_iteration=3.25, serial_fraction=0.02),
    ]
