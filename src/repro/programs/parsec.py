"""Parsec benchmarks (emerging-workload suite, largest inputs).

* ``blackscholes`` (bscholes) — option pricing by Black-Scholes PDE:
  pure floating point per option, embarrassingly parallel.
* ``bodytrack`` (btrack) — computer-vision body tracking: particle
  filter stages separated by barriers, moderate memory traffic.
* ``freqmine`` (fmine) — FP-growth frequent itemset mining: pointer
  chasing over the FP-tree, irregular and memory-bound.
* ``fluidanimate`` — SPH fluid simulation: fine-grained locking on grid
  cells, synchronisation heavy.
* ``swaptions`` — Monte-Carlo swaption pricing: compute-bound,
  near-perfect scaling.
* ``canneal`` — cache-aggressive simulated annealing for chip routing:
  random-access memory-bound with atomic swap attempts.
"""

from __future__ import annotations

from ..compiler.builder import IRBuilder
from ..compiler.ir import AccessPattern, Module, Schedule
from ._kernels import simple_region
from .model import ProgramModel, build_program

SUITE = "parsec"


def _blackscholes_module() -> Module:
    b = IRBuilder("blackscholes")
    with b.function("bs_thread"):
        simple_region(
            b, "price_options", trip_count=80000,
            loads=3, stores=1, fadds=12, fmuls=16, fdivs=3, sqrts=2,
            cmps=2, branches=2,
        )
    return b.build()


def _bodytrack_module() -> Module:
    b = IRBuilder("bodytrack")
    with b.function("particle_filter"):
        simple_region(
            b, "edge_detect", trip_count=10000,
            access=AccessPattern.STRIDED,
            loads=9, stores=4, fadds=8, fmuls=8, geps=3, cmps=2,
            branches=2, barriers=1,
        )
        simple_region(
            b, "particle_weights", trip_count=7000,
            schedule=Schedule.DYNAMIC,
            loads=7, stores=2, fadds=9, fmuls=10, fdivs=1, geps=2,
            cmps=2, branches=2, barriers=1,
        )
    return b.build()


def _freqmine_module() -> Module:
    b = IRBuilder("freqmine")
    with b.function("fp_growth"):
        simple_region(
            b, "tree_build", trip_count=12000,
            access=AccessPattern.IRREGULAR, schedule=Schedule.DYNAMIC,
            loads=11, stores=5, adds=5, geps=9, cmps=4, branches=4,
            atomics=1,
        )
        simple_region(
            b, "pattern_mine", trip_count=15000,
            access=AccessPattern.IRREGULAR, schedule=Schedule.DYNAMIC,
            loads=12, stores=3, adds=6, geps=9, cmps=5, branches=5,
        )
    return b.build()


def _fluidanimate_module() -> Module:
    b = IRBuilder("fluidanimate")
    with b.function("advance_frame"):
        simple_region(
            b, "compute_forces", trip_count=14000,
            loads=8, stores=3, fadds=10, fmuls=12, sqrts=1, geps=4,
            cmps=2, branches=2, criticals=2, barriers=1,
        )
        simple_region(
            b, "advance_particles", trip_count=9000,
            loads=6, stores=4, fadds=8, fmuls=6, geps=2, barriers=1,
        )
    return b.build()


def _swaptions_module() -> Module:
    b = IRBuilder("swaptions")
    with b.function("hjm_simulation"):
        simple_region(
            b, "mc_paths", trip_count=50000,
            loads=4, stores=2, fadds=14, fmuls=16, fdivs=2, sqrts=2,
            cmps=1, branches=1,
        )
    return b.build()


def _canneal_module() -> Module:
    b = IRBuilder("canneal")
    with b.function("anneal"):
        simple_region(
            b, "swap_elements", trip_count=20000,
            access=AccessPattern.IRREGULAR, schedule=Schedule.DYNAMIC,
            loads=12, stores=4, adds=4, geps=10, cmps=4, branches=4,
            atomics=2,
        )
    return b.build()


def programs() -> list[ProgramModel]:
    """All Parsec program models."""
    return [
        build_program("blackscholes", SUITE, _blackscholes_module(),
                      iterations=160, work_per_iteration=1.6,
                      serial_fraction=0.01),
        build_program("bodytrack", SUITE, _bodytrack_module(),
                      iterations=80, work_per_iteration=3.0,
                      serial_fraction=0.03),
        build_program("freqmine", SUITE, _freqmine_module(),
                      iterations=70, work_per_iteration=3.2,
                      serial_fraction=0.03),
        build_program("fluidanimate", SUITE, _fluidanimate_module(),
                      iterations=72, work_per_iteration=3.0,
                      serial_fraction=0.02),
        build_program("swaptions", SUITE, _swaptions_module(),
                      iterations=150, work_per_iteration=1.8,
                      serial_fraction=0.01),
        build_program("canneal", SUITE, _canneal_module(),
                      iterations=128, work_per_iteration=1.5,
                      serial_fraction=0.04),
    ]
