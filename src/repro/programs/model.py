"""Program models: IR modules plus execution structure.

A :class:`ProgramModel` is the static description of a benchmark — its IR
module, its parallel regions (one per parallel loop, cycled for a number
of outer iterations, as the NAS codes do), and the serial work between
regions.  A :class:`ProgramInstance` is one running execution with
progress state; the runtime engine advances it tick by tick.

Work is measured in *core-seconds*: one work unit is one second of one
core at full efficiency.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import Iterator, List, Optional

from ..compiler.ir import Module
from ..compiler.passes import LoopAnalysis, analyze_module
from .scaling import ScalingModel, USLScaling, derive_scaling


@dataclass(frozen=True)
class Region:
    """One parallel region (a parallel loop execution)."""

    loop_name: str
    work: float  # core-seconds per execution of this region
    analysis: LoopAnalysis
    scaling: ScalingModel

    def __post_init__(self) -> None:
        if self.work <= 0:
            raise ValueError(
                f"region {self.loop_name!r}: work must be positive"
            )

    # Cached: read once per rate computation on the engine's hot path,
    # and the underlying analysis values never change.
    @cached_property
    def memory_intensity(self) -> float:
        return self.analysis.memory_intensity

    @cached_property
    def sync_intensity(self) -> float:
        return self.analysis.sync_intensity


@dataclass(frozen=True)
class ProgramModel:
    """Static description of a benchmark program."""

    name: str
    suite: str
    module: Module
    regions: tuple[Region, ...]
    iterations: int
    serial_work_per_iteration: float  # core-seconds of serial glue
    scalable_hint: Optional[bool] = None  # filled by the training split

    def __post_init__(self) -> None:
        if not self.regions:
            raise ValueError(f"program {self.name!r} has no regions")
        if self.iterations < 1:
            raise ValueError(f"program {self.name!r}: iterations must be >= 1")
        if self.serial_work_per_iteration < 0:
            raise ValueError(
                f"program {self.name!r}: serial work cannot be negative"
            )

    @property
    def total_work(self) -> float:
        """Total core-seconds of work across the whole execution."""
        per_iter = sum(r.work for r in self.regions)
        return self.iterations * (
            per_iter + self.serial_work_per_iteration
        )

    def serial_time(self) -> float:
        """Execution time with one thread on one dedicated core."""
        return self.total_work

    def region(self, loop_name: str) -> Region:
        for region in self.regions:
            if region.loop_name == loop_name:
                return region
        raise KeyError(
            f"program {self.name!r} has no region {loop_name!r}"
        )

    def instantiate(self, job_id: Optional[str] = None) -> "ProgramInstance":
        return ProgramInstance(model=self, job_id=job_id or self.name)


def build_program(
    name: str,
    suite: str,
    module: Module,
    iterations: int,
    work_per_iteration: float,
    serial_fraction: float = 0.02,
) -> ProgramModel:
    """Construct a :class:`ProgramModel` from an IR module.

    ``work_per_iteration`` core-seconds are distributed over the module's
    parallel loops proportionally to their dynamic instruction counts —
    the work literally follows the code.  ``serial_fraction`` of each
    iteration is serial glue (I/O, convergence checks).
    """
    if not 0.0 <= serial_fraction < 1.0:
        raise ValueError("serial_fraction must be in [0, 1)")
    analysis = analyze_module(module)
    loops = list(analysis.loops.values())
    if not loops:
        raise ValueError(f"module {module.name!r} has no parallel loops")
    total_insts = sum(loop.total for loop in loops)
    parallel_work = work_per_iteration * (1.0 - serial_fraction)
    regions = tuple(
        Region(
            loop_name=loop.name,
            work=parallel_work * loop.total / total_insts,
            analysis=loop,
            scaling=derive_scaling(loop),
        )
        for loop in loops
    )
    return ProgramModel(
        name=name,
        suite=suite,
        module=module,
        regions=regions,
        iterations=iterations,
        serial_work_per_iteration=work_per_iteration * serial_fraction,
    )


@dataclass
class ProgramInstance:
    """A running execution of a program, with progress state.

    The execution alternates: serial glue of iteration i, then each
    region of iteration i in order, then iteration i+1, ...  The engine
    asks :meth:`phase` what is running, advances it with
    :meth:`advance`, and is told when a region boundary is crossed (the
    moment a thread-selection policy is consulted).
    """

    model: ProgramModel
    job_id: str
    iteration: int = 0
    region_index: int = -1  # -1 means "in serial glue"
    remaining: float = field(init=False)
    finished: bool = False
    threads: int = 1

    def __post_init__(self) -> None:
        self.remaining = self._phase_work()

    def _phase_work(self) -> float:
        if self.region_index < 0:
            work = self.model.serial_work_per_iteration
            if work > 0:
                return work
            # No serial glue: fall through to the first region.
            self.region_index = 0
        return self.model.regions[self.region_index].work

    @property
    def in_serial(self) -> bool:
        return self.region_index < 0

    @property
    def current_region(self) -> Optional[Region]:
        # Flat checks (no chained property hops): this is read several
        # times per job per engine tick.
        if self.region_index < 0 or self.finished:
            return None
        return self.model.regions[self.region_index]

    @property
    def at_region_boundary(self) -> bool:
        """True when a new parallel region is about to start."""
        return not self.finished and not self.in_serial and (
            self.remaining == self.model.regions[self.region_index].work
        )

    def advance(self, work_done: float) -> bool:
        """Consume ``work_done`` core-seconds; return True on boundary.

        Returns True when this call crossed into a *new parallel region*
        (the policy must be consulted before the next tick).  Any surplus
        work beyond the current phase is discarded — with a 0.1 s tick and
        multi-second regions the truncation error is far below run-to-run
        variance.
        """
        if self.finished:
            raise RuntimeError(f"program {self.job_id!r} already finished")
        if work_done < 0:
            raise ValueError("work_done cannot be negative")
        self.remaining -= work_done
        if self.remaining > 1e-12:
            return False
        # Phase complete: move to the next one.
        last_region = len(self.model.regions) - 1
        if self.region_index == last_region:
            self.iteration += 1
            if self.iteration >= self.model.iterations:
                self.finished = True
                self.remaining = 0.0
                return False
            self.region_index = -1
        else:
            self.region_index += 1
        self.remaining = self._phase_work()
        return not self.in_serial

    def progress_fraction(self) -> float:
        """Fraction of total work completed, in [0, 1]."""
        per_iter = (
            sum(r.work for r in self.model.regions)
            + self.model.serial_work_per_iteration
        )
        done = self.iteration * per_iter
        if not self.finished:
            if self.in_serial:
                done += self.model.serial_work_per_iteration - self.remaining
            else:
                done += self.model.serial_work_per_iteration
                done += sum(
                    r.work for r in self.model.regions[: self.region_index]
                )
                done += self.model.regions[self.region_index].work - self.remaining
        else:
            return 1.0
        return min(1.0, done / self.model.total_work)

    def restart(self) -> None:
        """Reset to the beginning (workload programs re-run repeatedly)."""
        self.iteration = 0
        self.region_index = -1
        self.finished = False
        self.remaining = self._phase_work()
