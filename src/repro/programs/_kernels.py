"""Shared helpers for writing benchmark kernels in IR.

Each benchmark module in :mod:`repro.programs.nas` / ``spec`` / ``parsec``
describes its parallel loops with an *instruction mix* — how many loads,
stores, float ops, branches, and synchronisation ops one iteration of the
loop body executes.  The mixes are chosen to match the published
characterisation of each code (compute- vs memory-bound, irregular
accesses, barrier frequency), and everything downstream (features,
scaling parameters, contention) is derived from them.
"""

from __future__ import annotations

from typing import Optional

from ..compiler.builder import IRBuilder
from ..compiler.ir import AccessPattern, Schedule


def emit_mix(
    b: IRBuilder,
    loads: int = 0,
    stores: int = 0,
    fadds: int = 0,
    fmuls: int = 0,
    fdivs: int = 0,
    sqrts: int = 0,
    adds: int = 0,
    muls: int = 0,
    cmps: int = 0,
    branches: int = 0,
    calls: int = 0,
    geps: int = 0,
    atomics: int = 0,
    criticals: int = 0,
    barriers: int = 0,
    reduces: int = 0,
) -> None:
    """Emit one loop-body iteration with the given instruction mix."""
    for _ in range(geps):
        b.gep()
    for _ in range(loads):
        b.load()
    for _ in range(adds):
        b.add()
    for _ in range(muls):
        b.mul()
    for _ in range(fadds):
        b.fadd()
    for _ in range(fmuls):
        b.fmul()
    for _ in range(fdivs):
        b.fdiv()
    for _ in range(sqrts):
        b.sqrt()
    for _ in range(cmps):
        b.cmp()
    for _ in range(branches):
        b.cond_branch()
    for _ in range(calls):
        b.call()
    for _ in range(stores):
        b.store()
    for _ in range(atomics):
        b.atomic()
    for _ in range(criticals):
        b.critical()
    for _ in range(reduces):
        b.reduce()
    for _ in range(barriers):
        b.barrier()


def parallel_region(
    b: IRBuilder,
    name: str,
    trip_count: int,
    access: AccessPattern = AccessPattern.REGULAR,
    schedule: Schedule = Schedule.STATIC,
    reduction: bool = False,
    **mix: int,
):
    """Context manager emitting a parallel loop with a body mix."""

    class _Region:
        def __enter__(self):
            self._cm = b.parallel_loop(
                name,
                trip_count=trip_count,
                schedule=schedule,
                access=access,
                reduction=reduction,
            )
            loop = self._cm.__enter__()
            emit_mix(b, **mix)
            return loop

        def __exit__(self, *exc):
            return self._cm.__exit__(*exc)

    return _Region()


def simple_region(
    b: IRBuilder,
    name: str,
    trip_count: int,
    access: AccessPattern = AccessPattern.REGULAR,
    schedule: Schedule = Schedule.STATIC,
    reduction: bool = False,
    **mix: int,
) -> None:
    """Emit a complete parallel loop (no nested structure)."""
    with parallel_region(
        b, name, trip_count, access=access, schedule=schedule,
        reduction=reduction, **mix
    ):
        pass
