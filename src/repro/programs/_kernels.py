"""Shared helpers for writing benchmark kernels in IR.

Each benchmark module in :mod:`repro.programs.nas` / ``spec`` / ``parsec``
describes its parallel loops with an *instruction mix* — how many loads,
stores, float ops, branches, and synchronisation ops one iteration of the
loop body executes.  The mixes are chosen to match the published
characterisation of each code (compute- vs memory-bound, irregular
accesses, barrier frequency), and everything downstream (features,
scaling parameters, contention) is derived from them.
"""

from __future__ import annotations

from typing import Optional

from ..compiler.builder import IRBuilder
from ..compiler.ir import AccessPattern, Schedule


def _load_ref(tag: str, k: int, access: AccessPattern) -> str:
    """The memory reference of input-array load ``k``.

    Regular codes stream their own element (``in0[i]``), strided codes
    skip (``in0[2*i]``), irregular codes gather through an index array
    (``in0[idx[i]]`` — an opaque subscript the dependence analysis
    cannot, and should not, prove anything about).
    """
    base = f"{tag}_in{k}" if tag else f"in{k}"
    if access is AccessPattern.STRIDED:
        return f"{base}[2*i]"
    if access is AccessPattern.IRREGULAR:
        return f"{base}[idx[i]]"
    return f"{base}[i]"


def _store_ref(tag: str, k: int, access: AccessPattern) -> str:
    """The memory reference of output-array store ``k``.

    Every iteration writes its *own* element — ``out0[i]`` (or
    ``out0[2*i]`` for strided codes): the owner-computes discipline
    that makes these kernels data-race-free, and that the dependence
    analysis proves SAFE.  Irregular codes gather on the read side but
    still scatter to their own row (spmv's ``y[row]`` pattern).
    """
    base = f"{tag}_out{k}" if tag else f"out{k}"
    if access is AccessPattern.STRIDED:
        return f"{base}[2*i]"
    return f"{base}[i]"


def emit_mix(
    b: IRBuilder,
    loads: int = 0,
    stores: int = 0,
    fadds: int = 0,
    fmuls: int = 0,
    fdivs: int = 0,
    sqrts: int = 0,
    adds: int = 0,
    muls: int = 0,
    cmps: int = 0,
    branches: int = 0,
    calls: int = 0,
    geps: int = 0,
    atomics: int = 0,
    criticals: int = 0,
    barriers: int = 0,
    reduces: int = 0,
    access: Optional[AccessPattern] = None,
    tag: str = "",
    acc: Optional[str] = None,
) -> None:
    """Emit one loop-body iteration with the given instruction mix.

    With ``access`` set, loads and stores carry *shared array
    references* in the grammar of :mod:`repro.analysis.refs`, shaped by
    the declared access pattern (see :func:`_load_ref` /
    :func:`_store_ref`); ``tag`` namespaces the array names per loop.
    With ``acc`` set (realized reductions), the final store targets
    that shared scalar — the accumulator combine the region's
    ``reduce`` instruction protects.  Without ``access`` the legacy
    thread-private operands (``%mem``) are emitted.
    """
    for _ in range(geps):
        b.gep()
    for k in range(loads):
        if access is None:
            b.load()
        else:
            b.load(_load_ref(tag, k, access))
    for _ in range(adds):
        b.add()
    for _ in range(muls):
        b.mul()
    for _ in range(fadds):
        b.fadd()
    for _ in range(fmuls):
        b.fmul()
    for _ in range(fdivs):
        b.fdiv()
    for _ in range(sqrts):
        b.sqrt()
    for _ in range(cmps):
        b.cmp()
    for _ in range(branches):
        b.cond_branch()
    for _ in range(calls):
        b.call()
    for k in range(stores):
        if access is None:
            b.store()
        elif acc is not None and k == stores - 1:
            b.store(acc)
        else:
            b.store(_store_ref(tag, k, access))
    for _ in range(atomics):
        b.atomic()
    for _ in range(criticals):
        b.critical()
    for _ in range(reduces):
        b.reduce()
    for _ in range(barriers):
        b.barrier()


def parallel_region(
    b: IRBuilder,
    name: str,
    trip_count: int,
    access: AccessPattern = AccessPattern.REGULAR,
    schedule: Schedule = Schedule.STATIC,
    reduction: bool = False,
    **mix: int,
):
    """Context manager emitting a parallel loop with a body mix."""

    # A declared-and-realized reduction combines into a shared scalar
    # accumulator; the region's reduce instruction protects it.
    acc = (
        "acc"
        if reduction and mix.get("reduces", 0) > 0
        and mix.get("stores", 0) > 0
        else None
    )

    class _Region:
        def __enter__(self):
            self._cm = b.parallel_loop(
                name,
                trip_count=trip_count,
                schedule=schedule,
                access=access,
                reduction=reduction,
            )
            loop = self._cm.__enter__()
            emit_mix(b, access=access, tag=name, acc=acc, **mix)
            return loop

        def __exit__(self, *exc):
            return self._cm.__exit__(*exc)

    return _Region()


def simple_region(
    b: IRBuilder,
    name: str,
    trip_count: int,
    access: AccessPattern = AccessPattern.REGULAR,
    schedule: Schedule = Schedule.STATIC,
    reduction: bool = False,
    **mix: int,
) -> None:
    """Emit a complete parallel loop (no nested structure)."""
    with parallel_region(
        b, name, trip_count, access=access, schedule=schedule,
        reduction=reduction, **mix
    ):
        pass
