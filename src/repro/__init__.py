"""repro: mixture-of-experts runtime thread-count selection.

A full reproduction of Emani & O'Boyle, "Celebrating Diversity: A
Mixture of Experts Approach for Runtime Mapping in Dynamic Environments"
(PLDI 2015), on a simulated multicore substrate.

Quickstart::

    from repro import (
        SimMachine, XEON_L7555, PeriodicAvailability, JobSpec,
        CoExecutionEngine, MixturePolicy, DefaultPolicy,
        default_experts, get_program,
    )

    experts = default_experts()          # offline training (cached)
    machine = SimMachine(
        topology=XEON_L7555,
        availability=PeriodicAvailability(max_processors=32, seed=1),
    )
    jobs = [
        JobSpec(program=get_program("lu"),
                policy=MixturePolicy(experts.experts), is_target=True),
        JobSpec(program=get_program("mg"), policy=DefaultPolicy(),
                job_id="workload", restart=True),
    ]
    result = CoExecutionEngine(machine, jobs).run()
    print(result.target_time)
"""

from .compiler import Diagnostic, IRBuilder, Module, Severity, lint_module
from .machine import (
    CompactAffinity,
    FailureWindow,
    NoAffinity,
    PeriodicAvailability,
    ScatterAffinity,
    SimMachine,
    StaticAvailability,
    Topology,
    TraceAvailability,
    TWELVE_CORE,
    XEON_L7555,
)
from .programs import get as get_program
from .programs import all_programs, ProgramModel
from .workload import (
    LiveTrace,
    WorkloadSet,
    generate_live_trace,
    workload_sets,
)
from .runtime import (
    CoExecutionEngine,
    JobSpec,
    SimulationResult,
    TickTracer,
    harmonic_mean,
    speedup,
)
from . import reporting
from .core import (
    Expert,
    ExpertBundle,
    FEATURE_NAMES,
    HyperplaneSelector,
    TrainingConfig,
    build_experts,
    default_experts,
)
from .core.policies import (
    AnalyticPolicy,
    DefaultPolicy,
    FixedPolicy,
    MixturePolicy,
    MonolithicPolicy,
    OfflinePolicy,
    OnlineHillClimbPolicy,
    SingleExpertPolicy,
    ThreadPolicy,
)

__version__ = "1.0.0"

__all__ = [
    "AnalyticPolicy",
    "CoExecutionEngine",
    "CompactAffinity",
    "DefaultPolicy",
    "Diagnostic",
    "Expert",
    "ExpertBundle",
    "FailureWindow",
    "FEATURE_NAMES",
    "FixedPolicy",
    "HyperplaneSelector",
    "IRBuilder",
    "JobSpec",
    "LiveTrace",
    "MixturePolicy",
    "Module",
    "MonolithicPolicy",
    "NoAffinity",
    "OfflinePolicy",
    "OnlineHillClimbPolicy",
    "PeriodicAvailability",
    "ProgramModel",
    "ScatterAffinity",
    "Severity",
    "SimMachine",
    "SimulationResult",
    "SingleExpertPolicy",
    "StaticAvailability",
    "ThreadPolicy",
    "TickTracer",
    "Topology",
    "TraceAvailability",
    "TrainingConfig",
    "TWELVE_CORE",
    "WorkloadSet",
    "XEON_L7555",
    "all_programs",
    "build_experts",
    "default_experts",
    "generate_live_trace",
    "get_program",
    "harmonic_mean",
    "lint_module",
    "reporting",
    "speedup",
    "workload_sets",
    "__version__",
]
