"""Structured outcome of a serving session.

Everything the soak harness asserts on — and everything an operator
would want after an incident — in one plain-data object: admission
(answered/shed/deadline-missed counts), degradation (per-tier decision
counts, every ladder transition), latency (p50/p99/mean/max), and the
crash-safety machinery's bookkeeping (journal records, snapshots,
quarantines, recovery point).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..runtime.metrics import FixedBucketHistogram
from ..runtime.tracing import TierTransition


def _histogram_line(snapshot: Dict[str, list]) -> Optional[str]:
    """Render a histogram snapshot's populated buckets, or None."""
    if not snapshot or not snapshot.get("counts"):
        return None
    histogram = FixedBucketHistogram(snapshot["bounds"])
    histogram.merge(snapshot)
    populated = histogram.nonzero()
    if not populated:
        return None
    buckets = ", ".join(f"{label}={count}" for label, count in populated)
    return f"latency histogram: {buckets}"


def _gauge_fragment(label: str, snapshot: Dict[str, float]) -> Optional[str]:
    if not snapshot or not snapshot.get("count"):
        return None
    return (f"{label} mean {snapshot['mean']:.1f} "
            f"max {snapshot['max']:.0f}")


@dataclass
class ServeReport:
    """Summary of one :class:`~repro.serve.server.PolicyServer` session."""

    total: int = 0
    answered: int = 0
    shed: int = 0
    deadline_misses: int = 0
    #: Decisions the final guard had to clamp into [1, available].
    clamped: int = 0
    #: Failure counts by reason ("exception", "non-finite",
    #: "out-of-range", "degenerate-features", "deadline") across all
    #: tier attempts.
    failures: Dict[str, int] = field(default_factory=dict)
    #: Answered decisions by serving tier name.
    tier_decisions: Dict[str, int] = field(default_factory=dict)
    transitions: List[TierTransition] = field(default_factory=list)
    trips: int = 0
    recoveries: int = 0
    probe_failures: int = 0
    final_tier: str = ""
    #: Latency snapshot (seconds): count/p50/p99/mean/max.
    latency: Dict[str, float] = field(default_factory=dict)
    #: Fixed-bucket latency histogram snapshot (bounds/counts).
    latency_histogram: Dict[str, list] = field(default_factory=dict)
    #: Arrival-group depth gauge snapshot (count/min/max/mean/last).
    queue_depth: Dict[str, float] = field(default_factory=dict)
    #: Served micro-batch size gauge snapshot.
    batch_sizes: Dict[str, float] = field(default_factory=dict)
    #: Journal/snapshot bookkeeping (empty when serving stateless).
    journal: Dict[str, int] = field(default_factory=dict)

    @property
    def unanswered(self) -> int:
        return self.total - self.answered - self.shed

    def to_jsonable(self) -> dict:
        return {
            "total": self.total,
            "answered": self.answered,
            "shed": self.shed,
            "deadline_misses": self.deadline_misses,
            "clamped": self.clamped,
            "failures": dict(self.failures),
            "tier_decisions": dict(self.tier_decisions),
            "transitions": [
                {
                    "request_index": t.request_index,
                    "from_tier": t.from_tier,
                    "to_tier": t.to_tier,
                    "reason": t.reason,
                }
                for t in self.transitions
            ],
            "trips": self.trips,
            "recoveries": self.recoveries,
            "probe_failures": self.probe_failures,
            "final_tier": self.final_tier,
            "latency": dict(self.latency),
            "latency_histogram": dict(self.latency_histogram),
            "queue_depth": dict(self.queue_depth),
            "batch_sizes": dict(self.batch_sizes),
            "journal": dict(self.journal),
        }

    def format(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"requests: {self.total} "
            f"(answered {self.answered}, shed {self.shed}, "
            f"deadline misses {self.deadline_misses})",
        ]
        if self.tier_decisions:
            tiers = ", ".join(
                f"{name}={count}"
                for name, count in self.tier_decisions.items()
            )
            lines.append(f"decisions by tier: {tiers}")
        lines.append(
            f"ladder: {self.trips} trips, {self.recoveries} recoveries, "
            f"{self.probe_failures} failed probes; "
            f"final tier: {self.final_tier or '-'}"
        )
        if self.failures:
            fails = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(self.failures.items())
            )
            lines.append(f"tier failures: {fails}")
        if self.clamped:
            lines.append(f"clamped decisions: {self.clamped}")
        if self.latency:
            lines.append(
                "latency: p50 {p50:.1f}us, p99 {p99:.1f}us, "
                "max {max:.1f}us".format(
                    p50=self.latency.get("p50", 0.0) * 1e6,
                    p99=self.latency.get("p99", 0.0) * 1e6,
                    max=self.latency.get("max", 0.0) * 1e6,
                )
            )
        histogram = _histogram_line(self.latency_histogram)
        if histogram:
            lines.append(histogram)
        gauges = [
            fragment for fragment in (
                _gauge_fragment("queue depth", self.queue_depth),
                _gauge_fragment("batch size", self.batch_sizes),
            ) if fragment
        ]
        if gauges:
            lines.append("; ".join(gauges))
        if self.journal:
            lines.append(
                "journal: {journal_records} records, "
                "{snapshots_written} snapshots, "
                "{replayed_records} replayed "
                "(resumed after request {recovered_req})".format(
                    **self.journal
                )
            )
        return "\n".join(lines)


#: Tier precedence for merging ``final_tier`` across per-stream servers
#: (higher = further degraded; unknown tiers sit below "expert").
_TIER_RANK = {"": 0, "default": 3, "expert": 2}


def merge_serve_reports(
    reports: List["ServeReport"],
    *,
    latency: Optional[Dict[str, float]] = None,
    latency_histogram: Optional[Dict[str, list]] = None,
    queue_depth: Optional[Dict[str, float]] = None,
    batch_sizes: Optional[Dict[str, float]] = None,
) -> "ServeReport":
    """Fold several :class:`ServeReport` objects into one.

    A shard hosts one :class:`~repro.serve.server.PolicyServer` per
    stream (that isolation is what makes a single stream's state
    shippable during resharding), but operators and the fleet aggregate
    still want *one* report per shard — this is the fold.  Counters and
    count dicts sum exactly; transitions concatenate in request order;
    ``final_tier`` takes the most-degraded stream.  The latency and
    gauge snapshots can't be merged exactly from summaries, so callers
    that hold shard-level instruments (the shard worker's shared
    latency ledger and flush-level gauges) pass them in; otherwise the
    counts-weighted approximation is used.
    """
    merged = ServeReport()
    histogram = FixedBucketHistogram()
    fallback_latency = {"count": 0.0, "p50": 0.0, "p99": 0.0,
                        "mean": 0.0, "max": 0.0}
    for report in reports:
        merged.total += report.total
        merged.answered += report.answered
        merged.shed += report.shed
        merged.deadline_misses += report.deadline_misses
        merged.clamped += report.clamped
        for key, count in report.failures.items():
            merged.failures[key] = merged.failures.get(key, 0) + count
        for key, count in report.tier_decisions.items():
            merged.tier_decisions[key] = (
                merged.tier_decisions.get(key, 0) + count
            )
        merged.transitions.extend(report.transitions)
        merged.trips += report.trips
        merged.recoveries += report.recoveries
        merged.probe_failures += report.probe_failures
        if _TIER_RANK.get(report.final_tier, 1) >= _TIER_RANK.get(
                merged.final_tier, 0):
            if report.final_tier:
                merged.final_tier = report.final_tier
        if report.latency_histogram.get("counts"):
            histogram.merge(report.latency_histogram)
        count = float(report.latency.get("count", 0.0))
        if count > 0:
            fallback_latency["count"] += count
            fallback_latency["mean"] += report.latency.get("mean", 0.0) * count
            fallback_latency["max"] = max(
                fallback_latency["max"], report.latency.get("max", 0.0)
            )
            fallback_latency["p50"] = max(
                fallback_latency["p50"], report.latency.get("p50", 0.0)
            )
            fallback_latency["p99"] = max(
                fallback_latency["p99"], report.latency.get("p99", 0.0)
            )
        for key, count in report.journal.items():
            if key == "recovered_req":
                merged.journal[key] = max(
                    merged.journal.get(key, -1), count
                )
            else:
                merged.journal[key] = merged.journal.get(key, 0) + count
    merged.transitions.sort(key=lambda t: t.request_index)
    if fallback_latency["count"] > 0:
        fallback_latency["mean"] /= fallback_latency["count"]
    merged.latency = latency if latency is not None else fallback_latency
    merged.latency_histogram = (
        latency_histogram if latency_histogram is not None
        else histogram.snapshot()
    )
    if queue_depth is not None:
        merged.queue_depth = queue_depth
    if batch_sizes is not None:
        merged.batch_sizes = batch_sizes
    return merged


@dataclass
class FleetReport:
    """Aggregate outcome of a sharded serving fleet session.

    Per-shard :class:`ServeReport` objects ride along untouched; the
    aggregate latency histogram and gauges are exact merges (fixed
    bucket bounds), while the aggregate p50/p99 are approximated from
    the merged histogram (bucket upper bounds) — raw samples stay in
    their shard processes.
    """

    shards: int = 0
    total: int = 0
    answered: int = 0
    shed: int = 0
    deadline_misses: int = 0
    #: Requests re-delivered after a shard death that the replacement
    #: recognised as already journaled (deduplicated, not re-served).
    recovered: int = 0
    #: Shard deaths detected and replaced mid-session.
    failovers: int = 0
    #: Wall-clock seconds of the serving session (0 when unknown).
    wall_s: float = 0.0
    #: Routing epochs swapped (one per committed resize/failover/
    #: evacuation — the fleet starts at epoch 0).
    epochs: int = 0
    #: Live resizes committed during the session.
    resizes: int = 0
    #: Streams whose state was shipped to a new owner (resize +
    #: evacuation ship-on-arrival combined).
    streams_migrated: int = 0
    #: Supervisor-granted shard restarts (crash failovers that spent
    #: restart budget).
    restarts: int = 0
    #: Shards evacuated after exhausting their restart budget.
    evacuations: int = 0
    #: Evacuated shards brought back by the supervisor.
    reinstatements: int = 0
    #: Liveness verdicts reached via heartbeat/doorbell deadline.
    heartbeat_timeouts: int = 0
    #: Extra spawn attempts consumed by transient fork/shm failures.
    spawn_retries: int = 0
    #: Histogram (seconds) of per-resize drain pauses — the window a
    #: migrating stream is quiesced between barrier and epoch swap.
    drain_pause: Dict[str, list] = field(default_factory=dict)
    #: Member ids for ``per_shard`` rows (positional when empty —
    #: resizing fleets have non-contiguous member ids).
    shard_ids: List[int] = field(default_factory=list)
    per_shard: List[ServeReport] = field(default_factory=list)
    latency_histogram: Dict[str, list] = field(default_factory=dict)
    queue_depth: Dict[str, float] = field(default_factory=dict)
    batch_sizes: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        if self.wall_s <= 0.0:
            return 0.0
        return self.answered / self.wall_s

    def latency_quantile(self, q: float) -> float:
        """Approximate latency quantile from the merged histogram.

        Returns the upper bound of the bucket containing the q-th
        sample (conservative: the true quantile is at or below it).
        """
        counts = self.latency_histogram.get("counts") or []
        bounds = self.latency_histogram.get("bounds") or []
        total = sum(counts)
        if not total:
            return 0.0
        rank = max(1, -(-total * q // 100))
        seen = 0
        for i, count in enumerate(counts):
            seen += count
            if seen >= rank:
                return float(bounds[i]) if i < len(bounds) else float(
                    bounds[-1]
                )
        return float(bounds[-1])

    def to_jsonable(self) -> dict:
        return {
            "shards": self.shards,
            "total": self.total,
            "answered": self.answered,
            "shed": self.shed,
            "deadline_misses": self.deadline_misses,
            "recovered": self.recovered,
            "failovers": self.failovers,
            "wall_s": self.wall_s,
            "throughput_rps": self.throughput_rps,
            "epochs": self.epochs,
            "resizes": self.resizes,
            "streams_migrated": self.streams_migrated,
            "restarts": self.restarts,
            "evacuations": self.evacuations,
            "reinstatements": self.reinstatements,
            "heartbeat_timeouts": self.heartbeat_timeouts,
            "spawn_retries": self.spawn_retries,
            "drain_pause": dict(self.drain_pause),
            "shard_ids": list(self.shard_ids),
            "latency_histogram": dict(self.latency_histogram),
            "queue_depth": dict(self.queue_depth),
            "batch_sizes": dict(self.batch_sizes),
            "per_shard": [r.to_jsonable() for r in self.per_shard],
        }

    def format(self) -> str:
        lines = [
            f"fleet: {self.shards} shards, {self.total} requests "
            f"(answered {self.answered}, shed {self.shed}, "
            f"deadline misses {self.deadline_misses})",
        ]
        if self.failovers or self.recovered:
            lines.append(
                f"failover: {self.failovers} shard deaths, "
                f"{self.recovered} journaled requests deduplicated"
            )
        if self.resizes or self.streams_migrated or self.epochs:
            lines.append(
                f"resharding: {self.resizes} resizes, "
                f"{self.streams_migrated} streams migrated, "
                f"epoch {self.epochs}"
            )
        if (self.restarts or self.evacuations or self.reinstatements
                or self.heartbeat_timeouts):
            lines.append(
                f"supervision: {self.restarts} restarts, "
                f"{self.evacuations} evacuations, "
                f"{self.reinstatements} reinstatements, "
                f"{self.heartbeat_timeouts} heartbeat timeouts"
            )
        if self.spawn_retries:
            lines.append(f"spawn retries: {self.spawn_retries}")
        pause = _histogram_line(self.drain_pause)
        if pause:
            lines.append(pause.replace("latency histogram",
                                       "drain pause histogram"))
        if self.wall_s > 0.0:
            lines.append(
                f"throughput: {self.throughput_rps:,.0f} req/s over "
                f"{self.wall_s:.2f}s; "
                f"p99 <= {self.latency_quantile(99.0) * 1e6:.0f}us "
                f"(histogram bound)"
            )
        histogram = _histogram_line(self.latency_histogram)
        if histogram:
            lines.append(histogram)
        gauges = [
            fragment for fragment in (
                _gauge_fragment("queue depth", self.queue_depth),
                _gauge_fragment("batch size", self.batch_sizes),
            ) if fragment
        ]
        if gauges:
            lines.append("; ".join(gauges))
        for position, report in enumerate(self.per_shard):
            if position < len(self.shard_ids):
                shard_index = self.shard_ids[position]
            else:
                shard_index = position
            tiers = ", ".join(
                f"{name}={count}"
                for name, count in report.tier_decisions.items()
            ) or "-"
            lines.append(
                f"  shard {shard_index}: {report.total} requests, "
                f"tiers [{tiers}], trips {report.trips}"
            )
        return "\n".join(lines)
