"""Structured outcome of a serving session.

Everything the soak harness asserts on — and everything an operator
would want after an incident — in one plain-data object: admission
(answered/shed/deadline-missed counts), degradation (per-tier decision
counts, every ladder transition), latency (p50/p99/mean/max), and the
crash-safety machinery's bookkeeping (journal records, snapshots,
quarantines, recovery point).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..runtime.tracing import TierTransition


@dataclass
class ServeReport:
    """Summary of one :class:`~repro.serve.server.PolicyServer` session."""

    total: int = 0
    answered: int = 0
    shed: int = 0
    deadline_misses: int = 0
    #: Decisions the final guard had to clamp into [1, available].
    clamped: int = 0
    #: Failure counts by reason ("exception", "non-finite",
    #: "out-of-range", "degenerate-features", "deadline") across all
    #: tier attempts.
    failures: Dict[str, int] = field(default_factory=dict)
    #: Answered decisions by serving tier name.
    tier_decisions: Dict[str, int] = field(default_factory=dict)
    transitions: List[TierTransition] = field(default_factory=list)
    trips: int = 0
    recoveries: int = 0
    probe_failures: int = 0
    final_tier: str = ""
    #: Latency snapshot (seconds): count/p50/p99/mean/max.
    latency: Dict[str, float] = field(default_factory=dict)
    #: Journal/snapshot bookkeeping (empty when serving stateless).
    journal: Dict[str, int] = field(default_factory=dict)

    @property
    def unanswered(self) -> int:
        return self.total - self.answered - self.shed

    def to_jsonable(self) -> dict:
        return {
            "total": self.total,
            "answered": self.answered,
            "shed": self.shed,
            "deadline_misses": self.deadline_misses,
            "clamped": self.clamped,
            "failures": dict(self.failures),
            "tier_decisions": dict(self.tier_decisions),
            "transitions": [
                {
                    "request_index": t.request_index,
                    "from_tier": t.from_tier,
                    "to_tier": t.to_tier,
                    "reason": t.reason,
                }
                for t in self.transitions
            ],
            "trips": self.trips,
            "recoveries": self.recoveries,
            "probe_failures": self.probe_failures,
            "final_tier": self.final_tier,
            "latency": dict(self.latency),
            "journal": dict(self.journal),
        }

    def format(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"requests: {self.total} "
            f"(answered {self.answered}, shed {self.shed}, "
            f"deadline misses {self.deadline_misses})",
        ]
        if self.tier_decisions:
            tiers = ", ".join(
                f"{name}={count}"
                for name, count in self.tier_decisions.items()
            )
            lines.append(f"decisions by tier: {tiers}")
        lines.append(
            f"ladder: {self.trips} trips, {self.recoveries} recoveries, "
            f"{self.probe_failures} failed probes; "
            f"final tier: {self.final_tier or '-'}"
        )
        if self.failures:
            fails = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(self.failures.items())
            )
            lines.append(f"tier failures: {fails}")
        if self.clamped:
            lines.append(f"clamped decisions: {self.clamped}")
        if self.latency:
            lines.append(
                "latency: p50 {p50:.1f}us, p99 {p99:.1f}us, "
                "max {max:.1f}us".format(
                    p50=self.latency.get("p50", 0.0) * 1e6,
                    p99=self.latency.get("p99", 0.0) * 1e6,
                    max=self.latency.get("max", 0.0) * 1e6,
                )
            )
        if self.journal:
            lines.append(
                "journal: {journal_records} records, "
                "{snapshots_written} snapshots, "
                "{replayed_records} replayed "
                "(resumed after request {recovered_req})".format(
                    **self.journal
                )
            )
        return "\n".join(lines)
