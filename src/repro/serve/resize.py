"""Live elastic resharding: ring-delta planning, lossless migration,
and the atomic epoch swap.

The fleet's shape is a list of member ids on the consistent-hash ring.
Resizing walks the *ring delta* — only streams whose owning vnode moves
between the old and new rings migrate (the consistent-hash minimality
property), everything else keeps serving untouched.  Each migrating
stream crosses in four steps:

1. **Quiesce** — flush every pending micro-batch and collect every
   in-flight decision, so no request is mid-air during the swap.
2. **Drain barrier** — the owning shard fsyncs the stream's journal
   and closes its server (``("drain", streams)`` over the control
   pipe); the stream's directory is now quiescent on disk.
3. **Ship** — snapshot + journal are atomically copied into a
   ``*.stage`` directory under the new owner, then renamed into place
   (``os.replace``); a crash mid-copy leaves only a staging dir the
   recovery sweep quarantines.
4. **Epoch swap** — one atomic ``topology.json`` write commits the new
   membership, epoch and generations.  Everything before it is
   provisional (crash ⇒ the resize never happened; sources stay
   authoritative); everything after is repair (crash ⇒ the resize
   fully happened; the ownership sweep retires superseded sources).

Requests are never dropped and never double-applied: the quiesce means
nothing is in flight across the swap, and a re-delivered prefix after
any crash dedupes against the stream's journal with ``"recovered"``
markers exactly as shard failover does.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..core.persistence import (ChecksumError, dump_checked_json,
                                load_checked_json, move_aside)
from .fleet import ShardRouter, _InlineShard, stream_dirname
from .journal import ship_state

#: Step names, in order, at which :func:`execute_resize` calls its
#: ``crash_hook`` — the crash-at-every-step suite injects faults here.
#: Steps through ``pre-epoch-swap`` precede the topology commit (a
#: crash rolls the resize back); ``commit`` and later follow it (a
#: crash completes during recovery).
RESIZE_STEPS = (
    "quiesce",
    "drain",
    "post-drain",
    "mid-copy",
    "place",
    "pre-epoch-swap",
    "commit",
    "retire",
)


@dataclass
class FleetTopology:
    """The fleet's persisted shape: the resize protocol's commit point.

    One checksummed, atomically-replaced JSON document holding the
    routing epoch, ring membership, per-member generation counters and
    the pending ship-on-arrival map.  Whatever this document says at
    recovery time *is* the fleet — everything on disk that disagrees
    with it is quarantined by :func:`sweep_state_root`.
    """

    epoch: int = 0
    members: List[int] = field(default_factory=list)
    generations: Dict[int, int] = field(default_factory=dict)
    #: Stream id -> source directory of state evacuated from a lost
    #: shard, awaiting ship-on-arrival to the stream's new owner.
    pending: Dict[str, str] = field(default_factory=dict)

    FILENAME = "topology.json"

    def to_jsonable(self) -> dict:
        return {
            "epoch": int(self.epoch),
            "members": sorted(int(m) for m in self.members),
            "generations": {
                str(member): int(generation)
                for member, generation in sorted(self.generations.items())
            },
            "pending": {str(k): str(v)
                        for k, v in sorted(self.pending.items())},
        }

    @classmethod
    def from_jsonable(cls, doc: dict) -> "FleetTopology":
        return cls(
            epoch=int(doc["epoch"]),
            members=[int(m) for m in doc["members"]],
            generations={int(k): int(v)
                         for k, v in doc.get("generations", {}).items()},
            pending={str(k): str(v)
                     for k, v in doc.get("pending", {}).items()},
        )

    def save(self, state_root: Union[str, Path]) -> Path:
        path = Path(state_root) / self.FILENAME
        path.parent.mkdir(parents=True, exist_ok=True)
        return dump_checked_json(self.to_jsonable(), path)

    @classmethod
    def load_or_create(
        cls, state_root: Union[str, Path], default_members: Sequence[int]
    ) -> "FleetTopology":
        path = Path(state_root) / cls.FILENAME
        if path.exists():
            try:
                return cls.from_jsonable(load_checked_json(path))
            except (ChecksumError, KeyError, TypeError, ValueError):
                # dump_checked_json is atomic, so a torn topology means
                # outside interference; quarantine it and start from
                # the configured shape rather than guessing.
                move_aside(path, Path(state_root) / "quarantine",
                           "torn")
        return cls(epoch=0, members=sorted(int(m) for m in default_members))


def shard_dirname(member: int, generation: int) -> str:
    """On-disk directory name of one shard generation (pure function,
    mirrored by ``PolicyFleet._shard_dir``)."""
    if generation == 0:
        return f"shard-{member}"
    return f"shard-{member}-g{generation}"


def sweep_state_root(
    state_root: Union[str, Path], topology: FleetTopology,
    replicas: int = 64,
) -> List[Path]:
    """Reconcile on-disk state with the committed topology.

    The single reclamation path shared by planned drains and crash
    failovers: quarantine every ``*.stage`` leftover (a crash mid-copy)
    and every stream directory whose sidecar says the current ring no
    longer routes it to the member hosting it (a crash between place
    and retire, or a superseded source after a committed resize).
    Returns the quarantined paths.
    """
    state_root = Path(state_root)
    quarantine = state_root / "quarantine"
    if not topology.members:
        return []
    router = ShardRouter(topology.members, replicas)
    quarantined: List[Path] = []
    for member in topology.members:
        generation = topology.generations.get(member, 0)
        directory = state_root / shard_dirname(member, generation)
        if not directory.exists():
            continue
        for entry in sorted(directory.iterdir()):
            if not entry.is_dir() or entry.name == "quarantine":
                continue
            if entry.name.endswith(".stage"):
                moved = move_aside(entry, quarantine, "stage")
                if moved is not None:
                    quarantined.append(moved)
                continue
            sidecar = entry / "stream.json"
            if not sidecar.exists():
                continue
            try:
                doc = load_checked_json(sidecar)
            except ChecksumError:
                continue  # the worker quarantines torn sidecars itself
            stream = str(doc["stream"])
            if router.route(stream) != member:
                moved = move_aside(entry, quarantine, "superseded")
                if moved is not None:
                    quarantined.append(moved)
    return quarantined


@dataclass(frozen=True)
class ResizePlan:
    """The ring delta of one resize: who joins, who leaves, what moves."""

    old_members: Tuple[int, ...]
    new_members: Tuple[int, ...]
    added: Tuple[int, ...]
    removed: Tuple[int, ...]
    #: Stream id -> (old owner, new owner); only streams whose owning
    #: vnode moves — the consistent-hash minimal-migration set.
    migrations: Dict[str, Tuple[int, int]]

    @property
    def unchanged(self) -> Tuple[int, ...]:
        return tuple(m for m in self.old_members if m in self.new_members)


def plan_resize(
    old_members: Sequence[int], new_members: Sequence[int],
    streams: Sequence[str], replicas: int = 64,
) -> ResizePlan:
    """Walk the ring delta: which streams change owners.

    Pure function of the two memberships and the stream set — the
    parent, the crash-recovery path and the tests all derive the same
    plan.
    """
    old_sorted = tuple(sorted(set(int(m) for m in old_members)))
    new_sorted = tuple(sorted(set(int(m) for m in new_members)))
    if not new_sorted:
        raise ValueError("a fleet needs at least one shard")
    old_router = ShardRouter(old_sorted, replicas)
    new_router = ShardRouter(new_sorted, replicas)
    migrations: Dict[str, Tuple[int, int]] = {}
    for stream in sorted(set(streams)):
        src = old_router.route(stream)
        dst = new_router.route(stream)
        if src != dst:
            migrations[stream] = (src, dst)
    return ResizePlan(
        old_members=old_sorted,
        new_members=new_sorted,
        added=tuple(m for m in new_sorted if m not in old_sorted),
        removed=tuple(m for m in old_sorted if m not in new_sorted),
        migrations=migrations,
    )


def _hosted_streams(shard) -> Set[str]:
    """Streams a shard is known to hold serving state for."""
    if isinstance(shard, _InlineShard):
        return set(shard.worker.servers)
    return set(getattr(shard, "resume_map", {}) or {})


def execute_resize(
    fleet, new_members: Sequence[int], *,
    crash_hook: Optional[Callable[[str], None]] = None,
) -> ResizePlan:
    """Reshard a live fleet to ``new_members``, losslessly.

    Implements the four-step protocol in the module docstring against
    a running :class:`~repro.serve.fleet.PolicyFleet`.  ``crash_hook``
    is called with each :data:`RESIZE_STEPS` name as that step begins —
    the crash suite raises from it to stop the world at every window
    and assert recovery.
    """
    hook = crash_hook if crash_hook is not None else (lambda step: None)
    if fleet._closed:
        raise RuntimeError("cannot resize a closed fleet")
    if fleet._state_root is None:
        raise RuntimeError(
            "resize requires state_root (migration ships journaled "
            "per-stream state)"
        )
    members = sorted(set(int(m) for m in new_members))
    if not members:
        raise ValueError("a fleet needs at least one shard")
    pause_started = fleet._clock()

    # 1. Quiesce: nothing pending, nothing in flight.
    hook("quiesce")
    fleet.drain()

    # Plan over every stream with live or on-disk state.
    streams: Set[str] = set(fleet._streams_seen)
    streams.update(fleet._pending_ship)
    for shard in fleet._shards.values():
        streams.update(_hosted_streams(shard))
    plan = plan_resize(fleet.members, members, streams,
                       fleet.config.replicas)

    # 2. Drain barrier: fsync + close every migrating stream at its
    #    current owner (streams awaiting ship-on-arrival have no live
    #    server — their state is already quiescent at the source).
    hook("drain")
    by_source: Dict[int, List[str]] = {}
    for stream, (src, _) in plan.migrations.items():
        if stream in fleet._pending_ship:
            continue
        by_source.setdefault(src, []).append(stream)
    for src in sorted(by_source):
        fleet._shards[src].drain_streams(sorted(by_source[src]))
    hook("post-drain")

    # 3. Ship: copy each migrating stream into a staging dir under its
    #    new owner, then rename into place.  Added members get a fresh
    #    generation directory (never inherit a stale one).
    next_generation = {m: fleet.generations.get(m, -1) + 1
                       for m in plan.added}

    def target_dir(member: int) -> Path:
        if member in next_generation:
            return Path(fleet._shard_dir(member, next_generation[member]))
        return Path(fleet._shards[member].state_dir)

    staged: List[Tuple[Path, Path, Path]] = []
    first_copy = True
    for stream in sorted(plan.migrations):
        src_member, dst_member = plan.migrations[stream]
        if stream in fleet._pending_ship:
            source = Path(fleet._pending_ship[stream])
        else:
            source = (Path(fleet._shards[src_member].state_dir)
                      / stream_dirname(stream))
        destination = target_dir(dst_member) / stream_dirname(stream)
        stage = destination.with_name(destination.name + ".stage")
        ship_state(source, stage)
        dump_checked_json({"stream": stream}, stage / "stream.json")
        staged.append((stage, destination, source))
        if first_copy:
            hook("mid-copy")
            first_copy = False
    hook("place")
    for stage, destination, _ in staged:
        if destination.exists():
            move_aside(destination, fleet.quarantine_dir, "superseded")
        os.replace(stage, destination)

    # Retire leaving members (their streams are all drained and
    # shipped; a clean stop collects their lifetime report) and spawn
    # joining members (which eagerly recover the placed state).  Both
    # precede the commit: a crash anywhere here still recovers into
    # the *old* shape with every source directory authoritative.
    for member in plan.removed:
        shard = fleet._shards.pop(member)
        report, states = shard.stop(fleet._sink)
        fleet._retired.append((member, report))
        fleet._merge_states(states)
    for member in plan.added:
        fleet._shards[member] = fleet._spawn(member,
                                             next_generation[member])

    # 4. Epoch swap: one atomic topology write commits everything.
    hook("pre-epoch-swap")
    fleet.members = list(plan.new_members)
    fleet.router = ShardRouter(fleet.members, fleet.config.replicas)
    fleet.epoch += 1
    fleet.events.bump("resizes")
    fleet.events.bump("streams_migrated", len(plan.migrations))
    for stream in plan.migrations:
        fleet._pending_ship.pop(stream, None)
    fleet._save_topology()
    hook("commit")

    # Post-commit repair: retire superseded sources so a later
    # failover can never resurrect a migrated-away stream.  A crash
    # in this window is finished by the recovery sweep — same
    # reclamation path.
    for _, destination, source in staged:
        if source != destination and source.exists():
            move_aside(source, fleet.quarantine_dir, "migrated")
    hook("retire")

    fleet.drain_pause.record(max(0.0, fleet._clock() - pause_started))
    return plan
