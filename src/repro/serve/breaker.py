"""Circuit breaker driving the tiered degradation ladder.

The server arranges its policies as tiers, best first (mixture → best
single expert → OpenMP default); the breaker decides which tier serves.
Repeated failures at the active tier *trip* the breaker one tier down;
after a cooldown it *half-opens* — probe requests are served by the
tier above, and enough consecutive probe successes step back up.

Everything is counted in requests, not wall-clock time: a soak run is
then fully deterministic (same request stream → same transition
sequence, regardless of machine speed), and the breaker state is a
handful of small integers that persist losslessly in the journal (see
:meth:`CircuitBreaker.export_state`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class BreakerConfig:
    """Trip/recovery thresholds, all in units of requests."""

    #: Consecutive failures at the active tier before stepping down.
    trip_threshold: int = 5
    #: Requests served at the lower tier before probing the upper one.
    cooldown_requests: int = 50
    #: Consecutive successful probes before stepping back up.
    probe_successes: int = 3

    def __post_init__(self) -> None:
        if self.trip_threshold < 1:
            raise ValueError("trip_threshold must be >= 1")
        if self.cooldown_requests < 1:
            raise ValueError("cooldown_requests must be >= 1")
        if self.probe_successes < 1:
            raise ValueError("probe_successes must be >= 1")


class CircuitBreaker:
    """Tracks the active tier of a ``num_tiers``-deep ladder.

    Tier 0 is the best (least degraded) tier.  The server calls exactly
    one of :meth:`record_result` / :meth:`record_probe` per request;
    both return the transition reason (``"trip"``, ``"probe"``,
    ``"probe-failed"``) when the request moved the ladder, else None.
    """

    def __init__(self, num_tiers: int,
                 config: Optional[BreakerConfig] = None):
        if num_tiers < 1:
            raise ValueError("need at least one tier")
        self.num_tiers = num_tiers
        self.config = config or BreakerConfig()
        self.tier = 0
        self._failures = 0
        self._cooldown = 0
        self._probe_streak = 0
        self.trips = 0
        self.recoveries = 0
        self.probe_failures = 0

    def wants_probe(self) -> bool:
        """Should this request half-open the tier above?"""
        return self.tier > 0 and self._cooldown == 0

    def record_result(self, success: bool) -> Optional[str]:
        """Outcome of serving at the active tier."""
        if success:
            self._failures = 0
        else:
            self._failures += 1
            if (self._failures >= self.config.trip_threshold
                    and self.tier < self.num_tiers - 1):
                self.tier += 1
                self.trips += 1
                self._failures = 0
                self._cooldown = self.config.cooldown_requests
                self._probe_streak = 0
                return "trip"
        if self.tier > 0 and self._cooldown > 0:
            self._cooldown -= 1
        return None

    def record_probe(self, success: bool) -> Optional[str]:
        """Outcome of a half-open probe of the tier above."""
        if success:
            self._probe_streak += 1
            if self._probe_streak >= self.config.probe_successes:
                self.tier -= 1
                self.recoveries += 1
                self._probe_streak = 0
                self._failures = 0
                self._cooldown = 0
                return "probe"
            return None
        self.probe_failures += 1
        self._probe_streak = 0
        self._cooldown = self.config.cooldown_requests
        return "probe-failed"

    # -- persistence (journaled per request) ------------------------------

    def export_state(self) -> dict:
        return {
            "tier": self.tier,
            "failures": self._failures,
            "cooldown": self._cooldown,
            "probe_streak": self._probe_streak,
        }

    def load_state(self, state: dict) -> None:
        tier = int(state.get("tier", 0))
        if not 0 <= tier < self.num_tiers:
            raise ValueError(f"breaker tier {tier} out of range")
        self.tier = tier
        self._failures = int(state.get("failures", 0))
        self._cooldown = int(state.get("cooldown", 0))
        self._probe_streak = int(state.get("probe_streak", 0))
