"""Sharded policy-serving fleet: consistent-hash routing, micro-batching,
shared-memory transport, and lossless shard failover.

One :class:`~repro.serve.server.PolicyServer` saturates one core — the
decision loop is pure Python around small numpy kernels.  The fleet
scales the serving runtime across cores the way the executor scales
simulations: shard-per-process, with the parent doing nothing per
decision but routing, batching and bookkeeping.

* **Routing** (:class:`ShardRouter`) — a consistent-hash ring keyed on
  the request's *stream id* (the loop name by default).  All requests
  of a stream land on the same shard, so each shard's online learner
  sees a coherent substream and a shard's state is a pure function of
  its substream — the property the failover twin check relies on.
  Hashing is sha256-based: stable across processes and Python runs
  (builtin ``hash()`` is salted per process).
* **Micro-batching** — per-shard bounded queues flush on ``batch_max``
  or a ``batch_linger`` deadline, feeding the vectorized
  :meth:`~repro.serve.server.PolicyServer.offer_batch` path.  Batch
  boundaries are wall-clock-dependent; decisions are not: the batch
  plan is bit-identical to the scalar loop, every flush starts at
  arrival position 0, and ``batch_max <= queue_capacity`` is enforced
  so admission never depends on where a linger deadline happened to
  fall.
* **Transport** — request and decision blocks travel through
  :class:`~repro.exec.shm.ShmRing` shared-memory rings as
  structure-of-arrays columns (``float64`` round-trips every IEEE
  double bit-exactly); the control pipes carry only tiny
  ``(slot, nbytes)`` doorbells.  Ring segments follow the executor's
  cleanup discipline: parent-assigned, ledger-tracked names; the
  worker creates, the parent attaches and is the only side that
  unlinks — so a SIGKILLed shard can never leak a segment.
* **Failover** — a dead shard is detected at the pipe (``EOFError`` /
  ``BrokenPipeError``), its journal + snapshots are *shipped*
  (atomically copied, torn tails tolerated) to a fresh generation
  directory, and a replacement worker recovers from the copy: newest
  snapshot + journal replay, bit-identical state.  In-flight batches
  are re-dispatched; the replacement recognises already-journaled
  requests by index and answers them with a ``"recovered"`` marker
  instead of serving them twice.  ``verify_fleet_recovery`` (in
  :mod:`repro.serve.soak`) asserts the whole dance against an
  uninterrupted inline twin.
"""

from __future__ import annotations

import bisect
import hashlib
import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple,
                    Union)

import numpy as np

from ..compiler.features import CodeFeatures
from ..core.persistence import (ChecksumError, dump_checked_json,
                                load_checked_json, move_aside)
from ..core.policies.base import PolicyContext, ThreadPolicy
from ..exec import shm
from ..exec.fault import RetryPolicy, ShmLedger
from ..runtime.metrics import (Counter, FixedBucketHistogram, Gauge,
                               LatencyLedger)
from ..sched.stats import EnvironmentSample
from .journal import ship_state
from .report import FleetReport, ServeReport, merge_serve_reports
from .server import PolicyServer, ServeConfig, ServeDecision, ServeRequest

#: Tier name of a failover re-delivery the replacement shard recognised
#: as already journaled (answered with no threads, never served twice).
RECOVERED_TIER = "recovered"

#: One (stream id, request) routing unit — the fleet's unit of work.
StreamRequest = Tuple[str, ServeRequest]


class ShardLostError(ConnectionError):
    """A shard process died or went silent past its liveness deadline.

    Raised instead of blocking forever when a worker dies between
    claiming a ring slot and posting its doorbell.  Subclasses
    ``ConnectionError`` (hence ``OSError``) so every existing
    pipe-error failover path catches it without special-casing.
    """


def stream_dirname(stream: str) -> str:
    """Directory name for one stream's serving state.

    Human-readable prefix for operators, sha256 suffix for uniqueness
    (stream ids are arbitrary strings; two may sanitise identically).
    Pure function of the stream id: the parent, every worker
    generation, and the resize planner all derive the same name.
    """
    safe = "".join(
        ch if ch.isalnum() or ch in "-_" else "-" for ch in stream
    )
    digest = hashlib.sha256(stream.encode("utf-8")).hexdigest()[:10]
    return f"stream-{safe[:24]}-{digest}"


class ShardRouter:
    """Consistent-hash ring mapping stream ids to shard member ids.

    ``replicas`` virtual nodes per shard smooth the key distribution;
    sha256 keeps the mapping stable across processes, runs and machines
    (required: the parent, every worker generation, and the verifying
    twin must all agree on which shard owns a stream).

    ``members`` is either a shard *count* (ring over ``0..n-1``, the
    original static-fleet form) or an explicit list of member ids — the
    elastic form, where adding or removing one member moves only the
    streams whose owning vnode changes hands (the minimal-migration
    property live resizing relies on).
    """

    def __init__(self, members: Union[int, Sequence[int]],
                 replicas: int = 64):
        if isinstance(members, int):
            if members < 1:
                raise ValueError("shards and replicas must be >= 1")
            members = range(members)
        member_ids = [int(m) for m in members]
        if not member_ids or replicas < 1:
            raise ValueError("shards and replicas must be >= 1")
        if len(set(member_ids)) != len(member_ids):
            raise ValueError("duplicate shard member ids")
        if any(m < 0 for m in member_ids):
            raise ValueError("shard member ids must be >= 0")
        self.members = tuple(sorted(member_ids))
        self.shards = len(self.members)
        self.replicas = replicas
        points: List[Tuple[int, int]] = []
        for shard in self.members:
            for replica in range(replicas):
                digest = hashlib.sha256(
                    f"shard-{shard}:{replica}".encode("ascii")
                ).digest()
                points.append((int.from_bytes(digest[:8], "big"), shard))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    def route(self, stream: str) -> int:
        """The shard owning ``stream`` (first ring point clockwise)."""
        digest = hashlib.sha256(stream.encode("utf-8")).digest()
        point = int.from_bytes(digest[:8], "big")
        i = bisect.bisect_right(self._points, point) % len(self._points)
        return self._owners[i]

    def assignments(self, streams: Sequence[str]) -> Dict[str, int]:
        return {stream: self.route(stream) for stream in streams}


@dataclass(frozen=True)
class FleetConfig:
    """Knobs of the sharded serving fleet."""

    shards: int = 2
    #: Micro-batch flush threshold (requests per shard batch).
    batch_max: int = 32
    #: Flush deadline for a partially-filled batch, seconds.
    batch_linger_s: float = 0.002
    #: Shared-memory ring slots per direction (in-flight window).
    ring_slots: int = 4
    #: Bytes per ring slot; must hold one encoded ``batch_max`` block.
    slot_bytes: int = 1 << 16
    #: Virtual nodes per shard on the consistent-hash ring.
    replicas: int = 64
    #: Longest the parent waits on a shard's control pipe before
    #: declaring it lost (:class:`ShardLostError`) — covers the worker
    #: dying between claiming a ring slot and posting its doorbell.
    #: The supervisor tightens this per shard to its liveness deadline.
    doorbell_timeout_s: float = 30.0
    serve: ServeConfig = field(default_factory=ServeConfig)

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        if self.batch_max > self.serve.queue_capacity:
            # Every flush starts at arrival position 0, so a batch
            # bounded by the queue capacity is never shed — which is
            # what makes decisions independent of linger timing.
            raise ValueError(
                "batch_max must not exceed serve.queue_capacity "
                "(linger-timed batch boundaries would otherwise "
                "change admission)"
            )
        if self.batch_linger_s < 0:
            raise ValueError("batch_linger_s cannot be negative")
        if self.ring_slots < 1:
            raise ValueError("ring_slots must be >= 1")
        if self.slot_bytes < 64:
            raise ValueError("slot_bytes must be >= 64")
        if self.doorbell_timeout_s <= 0:
            raise ValueError("doorbell_timeout_s must be positive")


# -- request/decision wire codec -------------------------------------------

#: EnvironmentSample scalar fields, in declaration order.
_ENV_FIELDS = (
    "time", "workload_threads", "processors", "runq_sz",
    "ldavg_1", "ldavg_5", "cached_memory", "pages_free_rate",
)


def encode_requests(
    batch: Sequence[StreamRequest], start_position: int = 0
) -> Tuple[dict, dict]:
    """Flatten ``(stream, request)`` pairs into SoA ring columns.

    Every float field travels as ``float64`` and therefore round-trips
    bit-exactly: the feature vector a shard rebuilds is the feature
    vector the parent held, to the last ulp.  The stream id travels as
    a vocab-interned column — the shard needs it to pick the stream's
    server, because per-stream serving state is what makes a single
    stream migratable during live resharding.
    """
    vocab: List[str] = []
    vocab_index: Dict[str, int] = {}

    def intern(text: str) -> int:
        slot = vocab_index.get(text)
        if slot is None:
            slot = len(vocab)
            vocab_index[text] = slot
            vocab.append(text)
        return slot

    n = len(batch)
    idx = np.empty(n, dtype=np.int64)
    times = np.empty(n, dtype=np.float64)
    stream_col = np.empty(n, dtype=np.int64)
    loop = np.empty(n, dtype=np.int64)
    available = np.empty(n, dtype=np.int64)
    max_threads = np.empty(n, dtype=np.int64)
    code = np.empty(3 * n, dtype=np.float64)
    env = np.empty(len(_ENV_FIELDS) * n, dtype=np.float64)
    for i, (stream, request) in enumerate(batch):
        ctx = request.ctx
        idx[i] = request.index
        times[i] = ctx.time
        stream_col[i] = intern(stream)
        loop[i] = intern(ctx.loop_name)
        available[i] = ctx.available_processors
        max_threads[i] = ctx.max_threads
        code[3 * i:3 * i + 3] = ctx.code.as_tuple()
        base = len(_ENV_FIELDS) * i
        for j, name in enumerate(_ENV_FIELDS):
            env[base + j] = getattr(ctx.env, name)
    meta = {"kind": "requests", "n": n, "vocab": vocab,
            "start_position": int(start_position)}
    arrays = {"idx": idx, "time": times, "stream": stream_col,
              "loop": loop, "available": available,
              "max_threads": max_threads, "code": code, "env": env}
    return meta, arrays


def decode_requests(
    meta: dict, arrays: dict
) -> Tuple[int, List[StreamRequest]]:
    """Inverse of :func:`encode_requests`."""
    if meta.get("kind") != "requests":
        raise ValueError(f"expected a request block, got {meta.get('kind')!r}")
    vocab = meta["vocab"]
    width = len(_ENV_FIELDS)
    batch: List[StreamRequest] = []
    for i in range(int(meta["n"])):
        base = width * i
        env = EnvironmentSample(*(
            float(arrays["env"][base + j]) for j in range(width)
        ))
        ctx = PolicyContext(
            time=float(arrays["time"][i]),
            loop_name=vocab[int(arrays["loop"][i])],
            code=CodeFeatures(*(
                float(v) for v in arrays["code"][3 * i:3 * i + 3]
            )),
            env=env,
            available_processors=int(arrays["available"][i]),
            max_threads=int(arrays["max_threads"][i]),
        )
        batch.append((
            vocab[int(arrays["stream"][i])],
            ServeRequest(index=int(arrays["idx"][i]), ctx=ctx),
        ))
    return int(meta["start_position"]), batch


def encode_decisions(
    decisions: Sequence[ServeDecision], recovered: int = 0
) -> Tuple[dict, dict]:
    """Flatten decisions into SoA columns for the return ring."""
    vocab: List[str] = []
    vocab_index: Dict[str, int] = {}

    def intern(text: str) -> int:
        slot = vocab_index.get(text)
        if slot is None:
            slot = len(vocab)
            vocab_index[text] = slot
            vocab.append(text)
        return slot

    n = len(decisions)
    idx = np.empty(n, dtype=np.int64)
    threads = np.empty(n, dtype=np.int64)
    tier = np.empty(n, dtype=np.int64)
    latency = np.empty(n, dtype=np.float64)
    flags = np.empty(n, dtype=np.int64)
    failure = np.empty(n, dtype=np.int64)
    for i, decision in enumerate(decisions):
        idx[i] = decision.index
        threads[i] = -1 if decision.threads is None else decision.threads
        tier[i] = intern(decision.tier)
        latency[i] = decision.latency_s
        flags[i] = (1 if decision.shed else 0) | (
            2 if decision.deadline_missed else 0
        )
        failure[i] = (
            -1 if decision.failure is None else intern(decision.failure)
        )
    meta = {"kind": "decisions", "n": n, "vocab": vocab,
            "recovered": int(recovered)}
    arrays = {"idx": idx, "threads": threads, "tier": tier,
              "latency": latency, "flags": flags, "failure": failure}
    return meta, arrays


def decode_decisions(meta: dict, arrays: dict) -> Tuple[int, List[ServeDecision]]:
    """Inverse of :func:`encode_decisions`: ``(recovered, decisions)``."""
    if meta.get("kind") != "decisions":
        raise ValueError(f"expected a decision block, got {meta.get('kind')!r}")
    vocab = meta["vocab"]
    decisions: List[ServeDecision] = []
    for i in range(int(meta["n"])):
        threads = int(arrays["threads"][i])
        failure = int(arrays["failure"][i])
        flags = int(arrays["flags"][i])
        decisions.append(ServeDecision(
            index=int(arrays["idx"][i]),
            threads=None if threads < 0 else threads,
            tier=vocab[int(arrays["tier"][i])],
            latency_s=float(arrays["latency"][i]),
            shed=bool(flags & 1),
            deadline_missed=bool(flags & 2),
            failure=None if failure < 0 else vocab[failure],
        ))
    return int(meta.get("recovered", 0)), decisions


# -- the shard-side serving core -------------------------------------------


class ShardWorker:
    """One shard's serving core: per-stream servers + the dedupe rule.

    Used both inline (deterministic tests, the resize/failover twin)
    and as the body of a shard process.  Each stream gets its *own*
    :class:`~repro.serve.server.PolicyServer` with its own journal +
    snapshot directory, so a stream's decisions are a pure function of
    that stream's request prefix — independent of which shard hosts it.
    That placement-independence is what live resharding rests on: one
    stream's directory can be drained, shipped and re-opened elsewhere
    without touching its neighbours, and a resized fleet stays
    bit-identical to a never-resized twin.

    The dedupe rule makes re-dispatch after failover or migration
    lossless instead of double-serving: every request — served or shed
    — advances its stream's journal, so after recovery
    ``server.next_index`` is exactly the first index that stream had
    *not* durably processed.  Re-delivered requests below it are
    answered with a :data:`RECOVERED_TIER` marker.
    """

    def __init__(self, policy_factory: Callable[[], ThreadPolicy],
                 config: ServeConfig,
                 state_dir: Optional[Union[str, Path]] = None):
        self.policy_factory = policy_factory
        self.config = config
        self.state_dir = None if state_dir is None else Path(state_dir)
        self.servers: Dict[str, PolicyServer] = {}
        self.recovered = 0
        #: One latency ledger shared by every stream server, so the
        #: shard-level latency summary is exact (raw samples), not a
        #: lossy merge of per-stream percentiles.
        self.latency = LatencyLedger()
        #: Flush-level gauges: depth/size of whole micro-batches as
        #: dispatched, regardless of how they split across streams.
        self.queue_depth = Gauge()
        self.batch_sizes = Gauge()
        #: Reports of servers drained away by a migration — their
        #: served requests still belong in this shard's totals.
        self._retired_reports: List[ServeReport] = []
        if self.state_dir is not None and self.state_dir.exists():
            self._recover_streams()

    # -- stream lifecycle --------------------------------------------------

    def _recover_streams(self) -> None:
        """Eagerly re-open every stream directory under ``state_dir``.

        A directory is a stream's home iff it carries a readable
        ``stream.json`` sidecar (the dir name is a hash; the sidecar is
        the authoritative reverse mapping).  Torn sidecars and staging
        leftovers (``*.stage``, a crash mid-migration) are quarantined,
        never opened — recovery must not resurrect half-shipped state.
        """
        assert self.state_dir is not None
        quarantine = self.state_dir / "quarantine"
        for entry in sorted(self.state_dir.iterdir()):
            if not entry.is_dir() or entry.name == "quarantine":
                continue
            if entry.name.endswith(".stage"):
                move_aside(entry, quarantine, "stage")
                continue
            sidecar = entry / "stream.json"
            if not sidecar.exists():
                continue
            try:
                doc = load_checked_json(sidecar)
            except ChecksumError:
                move_aside(entry, quarantine, "torn-sidecar")
                continue
            self._open(str(doc["stream"]), entry)

    def _open(self, stream: str, directory: Optional[Path]) -> PolicyServer:
        server = PolicyServer(self.policy_factory(), self.config,
                              state_dir=directory)
        # Share the shard ledger: per-stream percentiles merge lossily,
        # raw samples don't.
        server.latency = self.latency
        self.servers[stream] = server
        return server

    def server_for(self, stream: str) -> PolicyServer:
        """The stream's server, created (and recovered) on first use.

        Creation is lazy so a migrated-in stream whose state was
        shipped *after* this worker started still recovers from the
        shipped journal the moment its first request arrives.
        """
        server = self.servers.get(stream)
        if server is not None:
            return server
        directory = None
        if self.state_dir is not None:
            directory = self.state_dir / stream_dirname(stream)
            sidecar = directory / "stream.json"
            if not sidecar.exists():
                directory.mkdir(parents=True, exist_ok=True)
                dump_checked_json({"stream": stream}, sidecar)
        return self._open(stream, directory)

    def resume_map(self) -> Dict[str, int]:
        """Per-stream first-unjournaled index (the recovery frontier)."""
        return {stream: server.next_index
                for stream, server in self.servers.items()}

    def drain_streams(self, streams: Sequence[str]) -> Dict[str, int]:
        """Migration drain barrier: fsync, close and retire streams.

        Returns each drained stream's resume index.  After this the
        stream's directory is quiescent on disk — safe to ship — and
        this worker will never touch it again (the server object is
        dropped; a stray later request would open a *fresh* server,
        which the epoch-swap protocol prevents by rerouting first).
        """
        resumed: Dict[str, int] = {}
        for stream in streams:
            server = self.servers.pop(stream, None)
            if server is None:
                continue
            if server.store is not None:
                server.store.sync()
            self._retired_reports.append(server.report())
            server.close()
            resumed[stream] = server.next_index
        return resumed

    # -- serving -----------------------------------------------------------

    def serve_batch(
        self, position: int, batch: Sequence[StreamRequest]
    ) -> Tuple[List[ServeDecision], int]:
        """Serve one micro-batch of pairs; returns ``(decisions, deduped)``.

        The batch is split by stream; each stream's sub-batch is served
        by that stream's server from arrival position 0 — so admission
        and decisions depend only on (stream, prefix), never on which
        other streams happened to share the flush or the shard.
        """
        batch = list(batch)
        groups: Dict[str, List[ServeRequest]] = {}
        order: List[Tuple[str, int]] = []
        for stream, request in batch:
            groups.setdefault(stream, []).append(request)
            order.append((stream, request.index))
        answered: Dict[Tuple[str, int], ServeDecision] = {}
        deduped = 0
        for stream, requests in groups.items():
            server = self.server_for(stream)
            # A stream's substream has strictly increasing indices, so
            # the already-journaled part of a re-delivery is a prefix.
            skip = 0
            while (skip < len(requests)
                   and requests[skip].index < server.next_index):
                skip += 1
            for request in requests[:skip]:
                answered[(stream, request.index)] = ServeDecision(
                    index=request.index, threads=None,
                    tier=RECOVERED_TIER, latency_s=0.0,
                )
            deduped += skip
            if skip < len(requests):
                decisions = server.offer_batch(
                    requests[skip:], start_position=position + skip
                )
                for request, decision in zip(requests[skip:], decisions):
                    answered[(stream, request.index)] = decision
        self.recovered += deduped
        self.queue_depth.record(float(len(batch)))
        self.batch_sizes.record(float(len(batch)))
        return [answered[key] for key in order], deduped

    # -- bookkeeping -------------------------------------------------------

    def report(self) -> ServeReport:
        reports = [server.report() for server in self.servers.values()]
        reports.extend(self._retired_reports)
        return merge_serve_reports(
            reports,
            latency=self.latency.snapshot(),
            latency_histogram=self.latency.histogram.snapshot(),
            queue_depth=self.queue_depth.snapshot(),
            batch_sizes=self.batch_sizes.snapshot(),
        )

    def states(self) -> Dict[str, dict]:
        """Per-stream online learner state (live streams only —
        migrated-away streams export wherever they now live)."""
        return {stream: server.policy.export_online_state()
                for stream, server in self.servers.items()}

    def close(self) -> None:
        for server in self.servers.values():
            server.close()


def _shard_worker_main(conn, policy_factory, state_dir, serve_config,
                       request_name, decision_name, ring_slots,
                       slot_bytes) -> None:
    """Shard process body: recover, announce readiness, serve doorbells.

    The worker *creates* both ring segments (under the parent-assigned
    names), so a worker killed mid-creation leaves at most a torn
    segment the parent's raw-unlink sweep handles.  Request blocks
    arrive as ``("req", slot, nbytes)`` doorbells; each is answered
    with a decision block in the same slot of the return ring.  The
    control pipe also carries supervision traffic: ``("ping", seq)``
    heartbeats (echoed as ``("pong", seq)``) and ``("drain", streams)``
    migration barriers (answered ``("drained", resume_map)``).
    """
    request_ring = shm.ShmRing(request_name, ring_slots, slot_bytes,
                               create=True)
    decision_ring = shm.ShmRing(decision_name, ring_slots, slot_bytes,
                                create=True)
    try:
        worker = ShardWorker(policy_factory, serve_config, state_dir)
        conn.send(("ready", worker.resume_map()))
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "req":
                _, slot, nbytes = message
                meta, arrays = request_ring.read(slot, nbytes)
                position, batch = decode_requests(meta, arrays)
                decisions, deduped = worker.serve_batch(position, batch)
                reply_meta, reply_arrays = encode_decisions(
                    decisions, recovered=deduped
                )
                written = decision_ring.write(slot, reply_meta,
                                              reply_arrays)
                conn.send(("dec", slot, written))
            elif kind == "ping":
                conn.send(("pong", message[1]))
            elif kind == "drain":
                conn.send(("drained", worker.drain_streams(message[1])))
            elif kind == "stop":
                worker.close()
                conn.send(("stopped", worker.report(), worker.states()))
                break
            else:  # pragma: no cover - protocol error
                raise RuntimeError(f"unknown fleet message {kind!r}")
    except (EOFError, OSError, BrokenPipeError, KeyboardInterrupt):
        # Parent died or tore the pipe down: exit quietly; the parent
        # (or its ledger sweep) owns segment cleanup.
        pass
    finally:
        request_ring.close()
        decision_ring.close()
        try:
            conn.close()
        except OSError:
            pass


class _InlineShard:
    """In-process shard: same micro-batching, no transport.

    The deterministic twin for the soak verifiers and the single-core
    fallback — decisions are bit-identical to the process mode's
    because both run the same :class:`ShardWorker` over the same
    per-stream substreams.
    """

    def __init__(self, index: int, generation: int, policy_factory,
                 serve_config, state_dir):
        self.index = index
        self.generation = generation
        self.state_dir = state_dir
        self.worker = ShardWorker(policy_factory, serve_config,
                                  state_dir)
        self.pending: List[StreamRequest] = []
        self.deadline: Optional[float] = None

    def dispatch(self, batch: List[StreamRequest], sink) -> None:
        decisions, deduped = self.worker.serve_batch(0, batch)
        sink(self.index, decisions, deduped)

    def collect_one(self, sink, blocking: bool = False) -> bool:
        return False  # nothing is ever in flight inline

    def drain_streams(self, streams: Sequence[str]) -> Dict[str, int]:
        return self.worker.drain_streams(streams)

    def stop(self, sink) -> Tuple[ServeReport, Dict[str, dict]]:
        self.worker.close()
        return self.worker.report(), self.worker.states()


class _ProcessShard:
    """One shard process plus its rings, pipe and in-flight window."""

    def __init__(self, index: int, generation: int, policy_factory,
                 serve_config, state_dir, fleet_config: FleetConfig,
                 ledger: ShmLedger, mp_context,
                 clock: Callable[[], float] = time.monotonic,
                 events: Optional[Counter] = None):
        self.index = index
        self.generation = generation
        self.state_dir = state_dir
        self.pending: List[StreamRequest] = []
        self.deadline: Optional[float] = None
        #: slot -> (position, batch), oldest first (dict is ordered).
        self.inflight: Dict[int, Tuple[int, List[StreamRequest]]] = {}
        self.free_slots = list(range(fleet_config.ring_slots))
        #: Control-pipe deadline; the supervisor tightens this to its
        #: liveness timeout so a hung worker turns into a verdict, not
        #: a hang.
        self.recv_timeout_s = fleet_config.doorbell_timeout_s
        self._clock = clock
        self._events = events
        self.last_activity = clock()
        self.request_name = ledger.issue(shm.segment_name())
        self.decision_name = ledger.issue(shm.segment_name())
        self.process = None
        self.conn = None
        self.request_ring = None
        self.decision_ring = None
        try:
            self.conn, child_conn = mp_context.Pipe()
            self.process = mp_context.Process(
                target=_shard_worker_main,
                args=(child_conn, policy_factory, state_dir, serve_config,
                      self.request_name, self.decision_name,
                      fleet_config.ring_slots, fleet_config.slot_bytes),
                daemon=True,
            )
            self.process.start()
            child_conn.close()
            # Waits until the worker has created both rings and
            # finished recovery; a death here surfaces as
            # ShardLostError/EOFError for the spawn-retry loop.
            message = self._recv()
            if message[0] != "ready":  # pragma: no cover - protocol error
                raise RuntimeError(
                    f"shard sent {message[0]!r} before ready"
                )
            self.resume_map: Dict[str, int] = dict(message[1])
            self.request_ring = shm.ShmRing(
                self.request_name, fleet_config.ring_slots,
                fleet_config.slot_bytes,
            )
            self.decision_ring = shm.ShmRing(
                self.decision_name, fleet_config.ring_slots,
                fleet_config.slot_bytes,
            )
        except BaseException:
            # Transient fork/shm failures are retried by the fleet's
            # spawn loop; leave nothing behind for the next attempt.
            self._abort_partial(ledger)
            raise

    def _abort_partial(self, ledger: ShmLedger) -> None:
        if self.process is not None and self.process.is_alive():
            self.kill()
        for ring in (self.request_ring, self.decision_ring):
            if ring is not None:
                ring.close()
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
        ledger.release(self.request_name)
        ledger.release(self.decision_name)

    # -- transport ---------------------------------------------------------

    def _recv(self, timeout_s: Optional[float] = None):
        """Receive one control message, skimming heartbeat replies.

        Bounded poll loop instead of a bare ``conn.recv()``: a worker
        that dies (or wedges) between claiming a ring slot and posting
        its doorbell used to hang the parent forever — now it raises a
        typed :class:`ShardLostError` the failover path catches.
        """
        limit = timeout_s if timeout_s is not None else self.recv_timeout_s
        deadline = self._clock() + limit
        while True:
            if self.conn.poll(0.05):
                message = self.conn.recv()
                self.last_activity = self._clock()
                if message[0] == "pong":
                    continue
                return message
            if not self.process.is_alive():
                raise ShardLostError(
                    f"shard {self.index} (gen {self.generation}) died "
                    "with messages outstanding"
                )
            if self._clock() >= deadline:
                if self._events is not None:
                    self._events.bump("heartbeat_timeouts")
                raise ShardLostError(
                    f"shard {self.index} (gen {self.generation}) "
                    f"unresponsive for {limit:.1f}s"
                )

    def ping(self, seq: int) -> None:
        """Send one heartbeat; the reply is skimmed by any receive."""
        self.conn.send(("ping", seq))

    def dispatch(self, batch: List[StreamRequest], sink) -> None:
        """Ship one micro-batch; blocks for a free slot when the
        in-flight window is full (ring slots are the backpressure).

        The in-flight record is written only after a successful send:
        a batch that fails *here* is still owned by the caller (which
        re-dispatches it after failover), while a batch that fails
        *after* the send is owned by the in-flight window (which the
        failover teardown returns for re-dispatch) — each failed batch
        has exactly one owner, so none is lost or served twice.
        """
        while not self.free_slots:
            self.collect_one(sink, blocking=True)
        slot = self.free_slots.pop()
        meta, arrays = encode_requests(batch, start_position=0)
        nbytes = self.request_ring.write(slot, meta, arrays)
        self.conn.send(("req", slot, nbytes))
        self.inflight[slot] = (0, batch)

    def collect_one(self, sink, blocking: bool = False) -> bool:
        """Receive one decision doorbell; False when none is pending."""
        if not self.inflight:
            return False
        if blocking:
            message = self._recv()
        else:
            message = None
            while self.conn.poll():
                candidate = self.conn.recv()
                self.last_activity = self._clock()
                if candidate[0] == "pong":
                    continue
                message = candidate
                break
            if message is None:
                return False
        if message[0] == "dec":
            _, slot, nbytes = message
            meta, arrays = self.decision_ring.read(slot, nbytes)
            deduped, decisions = decode_decisions(meta, arrays)
            self.inflight.pop(slot, None)
            self.free_slots.append(slot)
            sink(self.index, decisions, deduped)
            return True
        raise RuntimeError(  # pragma: no cover - protocol error
            f"unexpected fleet message {message[0]!r}"
        )

    def drain_streams(self, streams: Sequence[str]) -> Dict[str, int]:
        """Send the migration drain barrier (caller quiesced first)."""
        self.conn.send(("drain", list(streams)))
        message = self._recv()
        if message[0] != "drained":  # pragma: no cover - protocol error
            raise RuntimeError(
                f"expected drained reply, got {message[0]!r}"
            )
        return dict(message[1])

    def stop(self, sink) -> Tuple[ServeReport, Dict[str, dict]]:
        while self.inflight:
            self.collect_one(sink, blocking=True)
        self.conn.send(("stop",))
        message = self._recv()
        if message[0] != "stopped":  # pragma: no cover - protocol error
            raise RuntimeError(
                f"expected stopped reply, got {message[0]!r}"
            )
        report, states = message[1], message[2]
        self.process.join(timeout=30)
        return report, states

    # -- failover ----------------------------------------------------------

    def kill(self) -> None:
        """SIGKILL the shard process (chaos injection for tests/CI)."""
        if self.process.pid is not None:
            try:
                os.kill(self.process.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
        self.process.join(timeout=30)

    def teardown(self, ledger: ShmLedger) -> List[Tuple[int, List[StreamRequest]]]:
        """Release a dead shard's resources; returns unacked batches."""
        if self.process.is_alive():  # pragma: no cover - defensive
            self.kill()
        try:
            self.conn.close()
        except OSError:
            pass
        self.request_ring.close()
        self.decision_ring.close()
        ledger.release(self.request_name)
        ledger.release(self.decision_name)
        return [
            (position, batch)
            for position, batch in self.inflight.values()
        ]


class PolicyFleet:
    """A sharded serving fleet behind one ``submit``/``drain`` surface.

    ``policy_factory`` builds a fresh policy per stream server (and per
    shard *generation* after failover).  With ``processes=True`` each
    shard runs in its own forked process behind shared-memory rings and
    a ``state_root`` is mandatory — failover needs a journal to replay.
    Inline mode serves on the caller's thread with identical decisions.

    The fleet's shape is *elastic*: membership is a list of shard ids
    on the consistent-hash ring, persisted (with the routing epoch and
    per-member generations) in ``state_root/topology.json``.
    :meth:`resize` adds/removes/replaces members live via
    :mod:`repro.serve.resize`; a :class:`~repro.serve.supervisor.
    FleetSupervisor` can layer heartbeats, restart budgets and
    evacuation on top.
    """

    def __init__(
        self,
        policy_factory: Callable[[], ThreadPolicy],
        config: Optional[FleetConfig] = None,
        *,
        state_root: Optional[Union[str, Path]] = None,
        processes: bool = False,
        clock: Callable[[], float] = time.monotonic,
        spawn_retry: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.config = config or FleetConfig()
        self.ledger = ShmLedger()
        self.decisions: List[ServeDecision] = []
        self.shard_reports: List[ServeReport] = []
        #: Stream id -> exported online-learner state, filled at close.
        self.stream_states: Dict[str, dict] = {}
        #: Fleet lifecycle event counts (resizes, restarts, ...).
        self.events = Counter()
        #: Seconds each committed resize kept migrating streams paused.
        self.drain_pause = FixedBucketHistogram()
        self._policy_factory = policy_factory
        self._state_root = None if state_root is None else Path(state_root)
        self._processes = processes
        self._clock = clock
        self._sleep = sleep
        self._spawn_retry = (spawn_retry if spawn_retry is not None
                             else RetryPolicy())
        self._recovered = 0
        self._failovers = 0
        self._started: Optional[float] = None
        self._closed = False
        self._streams_seen: set = set()
        #: Stream -> on-disk source dir of state evacuated from a lost
        #: shard, shipped to the stream's new owner on first arrival.
        self._pending_ship: Dict[str, str] = {}
        #: (member id, report) of shards retired by a resize.
        self._retired: List[Tuple[int, ServeReport]] = []
        self._report_ids: List[int] = []
        self._supervisor: Optional[Any] = None
        if processes:
            if self._state_root is None:
                raise ValueError(
                    "process mode requires state_root (failover "
                    "replays the shard journal)"
                )
            if not shm.shm_available():
                raise RuntimeError(
                    "shared memory is unavailable; run the fleet "
                    "inline (processes=False)"
                )
            import multiprocessing

            self._mp = multiprocessing.get_context("fork")
        self.epoch = 0
        self.generations: Dict[int, int] = {}
        members = list(range(self.config.shards))
        if self._state_root is not None:
            from .resize import FleetTopology, sweep_state_root

            topology = FleetTopology.load_or_create(
                self._state_root, members
            )
            self.epoch = topology.epoch
            members = list(topology.members)
            self.generations = {int(k): int(v)
                                for k, v in topology.generations.items()}
            self._pending_ship = {str(s): str(p)
                                  for s, p in topology.pending.items()}
            # One reclamation path for planned drains *and* crashes:
            # quarantine staging leftovers and stream dirs the topology
            # says their member no longer owns.
            sweep_state_root(self._state_root, topology,
                             self.config.replicas)
        self.members: List[int] = sorted(members)
        self.router = ShardRouter(self.members, self.config.replicas)
        self._save_topology()
        self._shards: Dict[int, Any] = {}
        for member in self.members:
            self._shards[member] = self._spawn(
                member, self.generations.get(member, 0)
            )

    # -- topology ----------------------------------------------------------

    def _save_topology(self) -> None:
        """Persist the routing epoch + membership + generations.

        ``topology.json`` is the resize protocol's atomic commit point:
        a crash *before* the write recovers into the old shape (staged
        copies quarantined), a crash *after* recovers into the new one
        (superseded sources quarantined by the ownership sweep).
        """
        if self._state_root is None:
            return
        from .resize import FleetTopology

        FleetTopology(
            epoch=self.epoch,
            members=list(self.members),
            generations=dict(self.generations),
            pending=dict(self._pending_ship),
        ).save(self._state_root)

    @property
    def quarantine_dir(self) -> Optional[Path]:
        if self._state_root is None:
            return None
        return self._state_root / "quarantine"

    # -- shard lifecycle ---------------------------------------------------

    def _shard_dir(self, index: int, generation: int) -> Optional[Path]:
        if self._state_root is None:
            return None
        if generation == 0:
            return self._state_root / f"shard-{index}"
        return self._state_root / f"shard-{index}-g{generation}"

    _SPAWN_ERRORS = (EOFError, OSError)

    def _spawn(self, index: int, generation: int):
        """Start one shard, retrying transient fork/shm failures.

        Backoff comes from the executor's :class:`RetryPolicy` with
        deterministic jitter keyed on the shard's id + generation, so
        reruns sleep the same amounts.  Each attempt starts clean: the
        shard constructor tears down its own partial state on failure.
        """
        state_dir = self._shard_dir(index, generation)
        self.generations[index] = generation
        if not self._processes:
            return _InlineShard(index, generation, self._policy_factory,
                                self.config.serve, state_dir)
        key = f"shard-{index}-g{generation}"
        attempt = 0
        while True:
            try:
                return _ProcessShard(
                    index, generation, self._policy_factory,
                    self.config.serve, state_dir, self.config,
                    self.ledger, self._mp, clock=self._clock,
                    events=self.events,
                )
            except self._SPAWN_ERRORS:
                attempt += 1
                if attempt > self._spawn_retry.max_retries:
                    raise
                self.events.bump("spawn_retries")
                self._sleep(self._spawn_retry.delay(attempt, key))

    def _ship_shard_state(self, source: Optional[Path],
                          target: Optional[Path], member: int) -> int:
        """Ship a dead shard's stream dirs its member still owns.

        The ownership filter is a staleness defense: a stream that
        migrated away earlier may have left a superseded directory
        behind, and shipping it into the replacement would resurrect
        old state.  Only streams the *current* ring routes to this
        member travel.
        """
        if source is None or target is None:
            return 0
        source = Path(source)
        shipped = 0
        if source.exists():
            for entry in sorted(source.iterdir()):
                if (not entry.is_dir() or entry.name == "quarantine"
                        or entry.name.endswith(".stage")):
                    continue
                sidecar = entry / "stream.json"
                if not sidecar.exists():
                    continue
                try:
                    doc = load_checked_json(sidecar)
                except ChecksumError:
                    continue
                stream = str(doc["stream"])
                if self.router.route(stream) != member:
                    continue
                destination = Path(target) / entry.name
                ship_state(entry, destination)
                dump_checked_json({"stream": stream},
                                  destination / "stream.json")
                shipped += 1
        Path(target).mkdir(parents=True, exist_ok=True)
        return shipped

    def _failover(self, index: int) -> List[List[StreamRequest]]:
        """Replace a dead shard; returns its unacked batches, in order.

        The replacement recovers from an atomically *shipped* copy of
        the dead generation's journal + snapshots (exactly as a standby
        on another machine would); the dead directory survives for
        post-mortem.  The caller owns re-dispatching the returned
        batches — the replacement's dedupe rule answers the
        already-journaled prefix with :data:`RECOVERED_TIER` markers.
        """
        dead = self._shards[index]
        self._failovers += 1
        unacked = dead.teardown(self.ledger)
        generation = dead.generation + 1
        target = self._shard_dir(index, generation)
        self._ship_shard_state(dead.state_dir, target, index)
        replacement = self._spawn(index, generation)
        replacement.pending = dead.pending
        replacement.deadline = dead.deadline
        self._shards[index] = replacement
        self._save_topology()
        return [batch for _, batch in unacked]

    def _evacuate(self, index: int) -> List[List[StreamRequest]]:
        """Remove a lost shard from the ring; survivors absorb it.

        Graceful degradation: the consistent-hash ring re-homes the
        lost member's streams onto survivors automatically, and each
        stream's on-disk state is registered for ship-on-arrival — it
        travels to whichever survivor first receives that stream.  A
        later :meth:`resize` re-adding the member shrinks the overflow
        back.  The pending-ship map rides in the topology document, so
        a crash mid-degradation loses nothing.
        """
        if len(self.members) <= 1:
            raise RuntimeError("cannot evacuate the last shard")
        dead = self._shards.pop(index)
        unacked = dead.teardown(self.ledger)
        batches = [batch for _, batch in unacked]
        if dead.pending:
            batches.append(dead.pending)
        if dead.state_dir is not None:
            source = Path(dead.state_dir)
            if source.exists():
                for entry in sorted(source.iterdir()):
                    sidecar = entry / "stream.json"
                    if not entry.is_dir() or not sidecar.exists():
                        continue
                    try:
                        doc = load_checked_json(sidecar)
                    except ChecksumError:
                        continue
                    self._pending_ship[str(doc["stream"])] = str(entry)
        self.members = [m for m in self.members if m != index]
        self.router = ShardRouter(self.members, self.config.replicas)
        self.epoch += 1
        self.events.bump("evacuations")
        self._save_topology()
        return batches

    _PIPE_ERRORS = (EOFError, BrokenPipeError, OSError)

    def _handle_loss(self, index: int) -> List[List[StreamRequest]]:
        """A shard is gone: restart it or evacuate it, per verdict.

        Without a supervisor every loss restarts in place (the PR 8
        behaviour).  With one, the restart budget decides — and an
        exhausted budget degrades gracefully instead of flapping.
        """
        if self._supervisor is not None:
            if self._supervisor.verdict(index) == "evacuate":
                return self._evacuate(index)
        return self._failover(index)

    def _redeliver(self, batches: List[List[StreamRequest]],
                   deaths: int) -> None:
        """Re-dispatch orphaned pairs under the *current* routing.

        After a restart the owner is unchanged; after an evacuation the
        ring has moved — grouping by a fresh ``route()`` covers both,
        so the loss-handling path is one code path, not two.
        """
        for batch in batches:
            groups: Dict[int, List[StreamRequest]] = {}
            for stream, request in batch:
                owner = self.router.route(stream)
                groups.setdefault(owner, []).append((stream, request))
            for owner, pairs in groups.items():
                self._dispatch(owner, pairs, deaths)

    def _ship_on_arrival(self, index: int,
                         batch: List[StreamRequest]) -> None:
        """Ship evacuated per-stream state to its new owner lazily."""
        if not self._pending_ship:
            return
        shard = self._shards[index]
        if shard.state_dir is None:
            return
        for stream in {stream for stream, _ in batch}:
            source = self._pending_ship.pop(stream, None)
            if source is None:
                continue
            target = Path(shard.state_dir) / stream_dirname(stream)
            ship_state(source, target)
            dump_checked_json({"stream": stream},
                              target / "stream.json")
            self.events.bump("streams_migrated")
            self._save_topology()

    def _dispatch(self, index: int, batch: List[StreamRequest],
                  deaths: int = 0) -> None:
        """Dispatch with failover: a torn pipe replaces (or evacuates)
        the shard and re-delivers every orphaned pair ahead of this
        batch, under whatever routing the loss produced."""
        if deaths > 3:
            raise RuntimeError(
                f"shards died {deaths} times while dispatching one "
                "batch; giving up"
            )
        shard = self._shards.get(index)
        if shard is None:
            # Owner vanished between routing and dispatch (evacuated).
            self._redeliver([batch], deaths)
            return
        self._ship_on_arrival(index, batch)
        try:
            shard.dispatch(batch, self._sink)
        except self._PIPE_ERRORS:
            orphans = self._handle_loss(index)
            self._redeliver(orphans + [batch], deaths + 1)

    def _collect(self, index: int, blocking: bool = False) -> bool:
        shard = self._shards.get(index)
        if shard is None:
            return False
        try:
            return shard.collect_one(self._sink, blocking)
        except self._PIPE_ERRORS:
            self._redeliver(self._handle_loss(index), deaths=1)
            return True

    # -- decision collection -----------------------------------------------

    def _sink(self, shard_index: int, decisions: List[ServeDecision],
              deduped: int) -> None:
        self.decisions.extend(decisions)
        self._recovered += deduped

    # -- public API --------------------------------------------------------

    def submit(self, request: ServeRequest,
               stream: Optional[str] = None) -> None:
        """Route one request to its stream's shard and micro-batch it.

        ``stream`` defaults to the loop name — the natural stream id of
        a mapping service, where each parallel region is a recurring
        decision stream.
        """
        if self._closed:
            raise RuntimeError("fleet is closed")
        if self._started is None:
            self._started = self._clock()
        key = stream if stream is not None else request.ctx.loop_name
        self._streams_seen.add(key)
        owner = self.router.route(key)
        shard = self._shards[owner]
        shard.pending.append((key, request))
        if len(shard.pending) == 1:
            shard.deadline = self._clock() + self.config.batch_linger_s
        if len(shard.pending) >= self.config.batch_max:
            self._flush(owner)
        else:
            self.poll()

    def _flush(self, index: int) -> None:
        shard = self._shards.get(index)
        if shard is None or not shard.pending:
            return
        batch, shard.pending = shard.pending, []
        shard.deadline = None
        self._dispatch(index, batch)

    def poll(self) -> None:
        """Opportunistic progress: expired lingers, ready decisions,
        and (when supervised) heartbeats + liveness verdicts."""
        now = self._clock()
        for index in list(self._shards):
            shard = self._shards.get(index)
            if shard is not None and shard.pending \
                    and shard.deadline is not None \
                    and now >= shard.deadline:
                self._flush(index)
        for index in list(self._shards):
            self._collect(index)
        if self._supervisor is not None:
            self._supervisor.tick()

    def drain(self) -> List[ServeDecision]:
        """Flush everything and wait for every in-flight decision."""
        while True:
            for index in list(self._shards):
                self._flush(index)
            for index in list(self._shards):
                while getattr(self._shards.get(index), "inflight", None):
                    self._collect(index, blocking=True)
            if not any(
                shard.pending or getattr(shard, "inflight", None)
                for shard in self._shards.values()
            ):
                return self.decisions

    def resize(self, shards: Optional[int] = None, *,
               members: Optional[Sequence[int]] = None,
               crash_hook: Optional[Callable[[str], None]] = None):
        """Live-reshard the fleet to a new shard count or member list.

        ``shards=n`` grows by appending fresh member ids (``max+1``
        upward) or shrinks by dropping the highest ids; ``members=``
        names the target membership explicitly (replace = remove one id
        and add another in a single swap).  Returns the executed
        :class:`~repro.serve.resize.ResizePlan`.
        """
        from .resize import execute_resize

        if members is None:
            if shards is None:
                raise ValueError("pass shards or members")
            members = self._members_for_count(int(shards))
        return execute_resize(self, list(members), crash_hook=crash_hook)

    def _members_for_count(self, count: int) -> List[int]:
        if count < 1:
            raise ValueError("shards must be >= 1")
        current = sorted(self.members)
        if count <= len(current):
            return current[:count]
        members = list(current)
        next_id = max(current) + 1
        while len(members) < count:
            members.append(next_id)
            next_id += 1
        return members

    def kill_shard(self, index: int) -> int:
        """SIGKILL one shard process (chaos hook); returns its pid."""
        shard = self._shards[index]
        if not isinstance(shard, _ProcessShard):
            raise RuntimeError("kill_shard requires process mode")
        pid = shard.process.pid
        shard.kill()
        return pid

    def owner(self, stream: str) -> int:
        return self.router.route(stream)

    def abort(self) -> None:
        """Kill everything without draining (crash-injection helper).

        Leaves the on-disk state exactly as the crash left it — the
        next fleet constructed over the same ``state_root`` exercises
        the recovery path; only shm segments are swept (the ledger
        discipline: a killed fleet must not leak ``/dev/shm``).
        """
        if self._closed:
            return
        for shard in self._shards.values():
            if isinstance(shard, _ProcessShard):
                shard.kill()
                shard.teardown(self.ledger)
        self._shards = {}
        self.ledger.sweep()
        self._closed = True

    def close(self) -> FleetReport:
        """Drain, stop every shard, sweep segments, aggregate."""
        if self._closed:
            raise RuntimeError("fleet is already closed")
        self.drain()
        ended = self._clock()
        reports: List[Tuple[int, ServeReport]] = list(self._retired)
        for index in sorted(self._shards):
            while True:
                try:
                    report, states = self._shards[index].stop(self._sink)
                    break
                except self._PIPE_ERRORS:
                    # Died at the finish line: recover one last time so
                    # the aggregate still reflects the journal.  Always
                    # restart (never evacuate) — the shard must yield
                    # its report and per-stream states.
                    self._redeliver(self._failover(index), deaths=1)
            reports.append((index, report))
            self._merge_states(states)
        self._closed = True
        self.ledger.sweep()
        self._report_ids = [member for member, _ in reports]
        self.shard_reports = [report for _, report in reports]
        wall = 0.0
        if self._started is not None:
            wall = max(0.0, ended - self._started)
        return self._aggregate(wall)

    def _merge_states(self, states: Dict[str, dict]) -> None:
        for stream, state in states.items():
            if stream in self.stream_states:
                raise RuntimeError(
                    f"stream {stream!r} exported state from two shards "
                    "(epoch-swap invariant violated)"
                )
            self.stream_states[stream] = state

    def _aggregate(self, wall_s: float) -> FleetReport:
        histogram = FixedBucketHistogram()
        queue_depth = Gauge()
        batch_sizes = Gauge()
        for report in self.shard_reports:
            if report.latency_histogram.get("counts"):
                histogram.merge(report.latency_histogram)
            if report.queue_depth.get("count"):
                queue_depth.merge(report.queue_depth)
            if report.batch_sizes.get("count"):
                batch_sizes.merge(report.batch_sizes)
        answered = sum(
            1 for d in self.decisions if d.threads is not None
        )
        shed = sum(1 for d in self.decisions if d.shed)
        misses = sum(1 for d in self.decisions if d.deadline_missed)
        return FleetReport(
            shards=len(self.members),
            total=len(self.decisions),
            answered=answered,
            shed=shed,
            deadline_misses=misses,
            recovered=self._recovered,
            failovers=self._failovers,
            wall_s=wall_s,
            epochs=self.epoch,
            resizes=self.events.get("resizes"),
            streams_migrated=self.events.get("streams_migrated"),
            restarts=self.events.get("restarts"),
            evacuations=self.events.get("evacuations"),
            reinstatements=self.events.get("reinstatements"),
            heartbeat_timeouts=self.events.get("heartbeat_timeouts"),
            spawn_retries=self.events.get("spawn_retries"),
            drain_pause=self.drain_pause.snapshot(),
            shard_ids=list(self._report_ids),
            per_shard=list(self.shard_reports),
            latency_histogram=histogram.snapshot(),
            queue_depth=queue_depth.snapshot(),
            batch_sizes=batch_sizes.snapshot(),
        )
