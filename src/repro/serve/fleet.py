"""Sharded policy-serving fleet: consistent-hash routing, micro-batching,
shared-memory transport, and lossless shard failover.

One :class:`~repro.serve.server.PolicyServer` saturates one core — the
decision loop is pure Python around small numpy kernels.  The fleet
scales the serving runtime across cores the way the executor scales
simulations: shard-per-process, with the parent doing nothing per
decision but routing, batching and bookkeeping.

* **Routing** (:class:`ShardRouter`) — a consistent-hash ring keyed on
  the request's *stream id* (the loop name by default).  All requests
  of a stream land on the same shard, so each shard's online learner
  sees a coherent substream and a shard's state is a pure function of
  its substream — the property the failover twin check relies on.
  Hashing is sha256-based: stable across processes and Python runs
  (builtin ``hash()`` is salted per process).
* **Micro-batching** — per-shard bounded queues flush on ``batch_max``
  or a ``batch_linger`` deadline, feeding the vectorized
  :meth:`~repro.serve.server.PolicyServer.offer_batch` path.  Batch
  boundaries are wall-clock-dependent; decisions are not: the batch
  plan is bit-identical to the scalar loop, every flush starts at
  arrival position 0, and ``batch_max <= queue_capacity`` is enforced
  so admission never depends on where a linger deadline happened to
  fall.
* **Transport** — request and decision blocks travel through
  :class:`~repro.exec.shm.ShmRing` shared-memory rings as
  structure-of-arrays columns (``float64`` round-trips every IEEE
  double bit-exactly); the control pipes carry only tiny
  ``(slot, nbytes)`` doorbells.  Ring segments follow the executor's
  cleanup discipline: parent-assigned, ledger-tracked names; the
  worker creates, the parent attaches and is the only side that
  unlinks — so a SIGKILLed shard can never leak a segment.
* **Failover** — a dead shard is detected at the pipe (``EOFError`` /
  ``BrokenPipeError``), its journal + snapshots are *shipped*
  (atomically copied, torn tails tolerated) to a fresh generation
  directory, and a replacement worker recovers from the copy: newest
  snapshot + journal replay, bit-identical state.  In-flight batches
  are re-dispatched; the replacement recognises already-journaled
  requests by index and answers them with a ``"recovered"`` marker
  instead of serving them twice.  ``verify_fleet_recovery`` (in
  :mod:`repro.serve.soak`) asserts the whole dance against an
  uninterrupted inline twin.
"""

from __future__ import annotations

import bisect
import hashlib
import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..compiler.features import CodeFeatures
from ..core.policies.base import PolicyContext, ThreadPolicy
from ..exec import shm
from ..exec.fault import ShmLedger
from ..runtime.metrics import FixedBucketHistogram, Gauge
from ..sched.stats import EnvironmentSample
from .journal import ship_state
from .report import FleetReport, ServeReport
from .server import PolicyServer, ServeConfig, ServeDecision, ServeRequest

#: Tier name of a failover re-delivery the replacement shard recognised
#: as already journaled (answered with no threads, never served twice).
RECOVERED_TIER = "recovered"


class ShardRouter:
    """Consistent-hash ring mapping stream ids to shard indices.

    ``replicas`` virtual nodes per shard smooth the key distribution;
    sha256 keeps the mapping stable across processes, runs and machines
    (required: the parent, every worker generation, and the verifying
    twin must all agree on which shard owns a stream).
    """

    def __init__(self, shards: int, replicas: int = 64):
        if shards < 1 or replicas < 1:
            raise ValueError("shards and replicas must be >= 1")
        self.shards = shards
        self.replicas = replicas
        points: List[Tuple[int, int]] = []
        for shard in range(shards):
            for replica in range(replicas):
                digest = hashlib.sha256(
                    f"shard-{shard}:{replica}".encode("ascii")
                ).digest()
                points.append((int.from_bytes(digest[:8], "big"), shard))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    def route(self, stream: str) -> int:
        """The shard owning ``stream`` (first ring point clockwise)."""
        digest = hashlib.sha256(stream.encode("utf-8")).digest()
        point = int.from_bytes(digest[:8], "big")
        i = bisect.bisect_right(self._points, point) % len(self._points)
        return self._owners[i]

    def assignments(self, streams: Sequence[str]) -> Dict[str, int]:
        return {stream: self.route(stream) for stream in streams}


@dataclass(frozen=True)
class FleetConfig:
    """Knobs of the sharded serving fleet."""

    shards: int = 2
    #: Micro-batch flush threshold (requests per shard batch).
    batch_max: int = 32
    #: Flush deadline for a partially-filled batch, seconds.
    batch_linger_s: float = 0.002
    #: Shared-memory ring slots per direction (in-flight window).
    ring_slots: int = 4
    #: Bytes per ring slot; must hold one encoded ``batch_max`` block.
    slot_bytes: int = 1 << 16
    #: Virtual nodes per shard on the consistent-hash ring.
    replicas: int = 64
    serve: ServeConfig = field(default_factory=ServeConfig)

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        if self.batch_max > self.serve.queue_capacity:
            # Every flush starts at arrival position 0, so a batch
            # bounded by the queue capacity is never shed — which is
            # what makes decisions independent of linger timing.
            raise ValueError(
                "batch_max must not exceed serve.queue_capacity "
                "(linger-timed batch boundaries would otherwise "
                "change admission)"
            )
        if self.batch_linger_s < 0:
            raise ValueError("batch_linger_s cannot be negative")
        if self.ring_slots < 1:
            raise ValueError("ring_slots must be >= 1")
        if self.slot_bytes < 64:
            raise ValueError("slot_bytes must be >= 64")


# -- request/decision wire codec -------------------------------------------

#: EnvironmentSample scalar fields, in declaration order.
_ENV_FIELDS = (
    "time", "workload_threads", "processors", "runq_sz",
    "ldavg_1", "ldavg_5", "cached_memory", "pages_free_rate",
)


def encode_requests(
    batch: Sequence[ServeRequest], start_position: int = 0
) -> Tuple[dict, dict]:
    """Flatten requests into SoA columns for one ring block.

    Every float field travels as ``float64`` and therefore round-trips
    bit-exactly: the feature vector a shard rebuilds is the feature
    vector the parent held, to the last ulp.
    """
    vocab: List[str] = []
    vocab_index: Dict[str, int] = {}

    def intern(text: str) -> int:
        slot = vocab_index.get(text)
        if slot is None:
            slot = len(vocab)
            vocab_index[text] = slot
            vocab.append(text)
        return slot

    n = len(batch)
    idx = np.empty(n, dtype=np.int64)
    times = np.empty(n, dtype=np.float64)
    loop = np.empty(n, dtype=np.int64)
    available = np.empty(n, dtype=np.int64)
    max_threads = np.empty(n, dtype=np.int64)
    code = np.empty(3 * n, dtype=np.float64)
    env = np.empty(len(_ENV_FIELDS) * n, dtype=np.float64)
    for i, request in enumerate(batch):
        ctx = request.ctx
        idx[i] = request.index
        times[i] = ctx.time
        loop[i] = intern(ctx.loop_name)
        available[i] = ctx.available_processors
        max_threads[i] = ctx.max_threads
        code[3 * i:3 * i + 3] = ctx.code.as_tuple()
        base = len(_ENV_FIELDS) * i
        for j, name in enumerate(_ENV_FIELDS):
            env[base + j] = getattr(ctx.env, name)
    meta = {"kind": "requests", "n": n, "vocab": vocab,
            "start_position": int(start_position)}
    arrays = {"idx": idx, "time": times, "loop": loop,
              "available": available, "max_threads": max_threads,
              "code": code, "env": env}
    return meta, arrays


def decode_requests(meta: dict, arrays: dict) -> Tuple[int, List[ServeRequest]]:
    """Inverse of :func:`encode_requests`."""
    if meta.get("kind") != "requests":
        raise ValueError(f"expected a request block, got {meta.get('kind')!r}")
    vocab = meta["vocab"]
    width = len(_ENV_FIELDS)
    batch: List[ServeRequest] = []
    for i in range(int(meta["n"])):
        base = width * i
        env = EnvironmentSample(*(
            float(arrays["env"][base + j]) for j in range(width)
        ))
        ctx = PolicyContext(
            time=float(arrays["time"][i]),
            loop_name=vocab[int(arrays["loop"][i])],
            code=CodeFeatures(*(
                float(v) for v in arrays["code"][3 * i:3 * i + 3]
            )),
            env=env,
            available_processors=int(arrays["available"][i]),
            max_threads=int(arrays["max_threads"][i]),
        )
        batch.append(ServeRequest(index=int(arrays["idx"][i]), ctx=ctx))
    return int(meta["start_position"]), batch


def encode_decisions(
    decisions: Sequence[ServeDecision], recovered: int = 0
) -> Tuple[dict, dict]:
    """Flatten decisions into SoA columns for the return ring."""
    vocab: List[str] = []
    vocab_index: Dict[str, int] = {}

    def intern(text: str) -> int:
        slot = vocab_index.get(text)
        if slot is None:
            slot = len(vocab)
            vocab_index[text] = slot
            vocab.append(text)
        return slot

    n = len(decisions)
    idx = np.empty(n, dtype=np.int64)
    threads = np.empty(n, dtype=np.int64)
    tier = np.empty(n, dtype=np.int64)
    latency = np.empty(n, dtype=np.float64)
    flags = np.empty(n, dtype=np.int64)
    failure = np.empty(n, dtype=np.int64)
    for i, decision in enumerate(decisions):
        idx[i] = decision.index
        threads[i] = -1 if decision.threads is None else decision.threads
        tier[i] = intern(decision.tier)
        latency[i] = decision.latency_s
        flags[i] = (1 if decision.shed else 0) | (
            2 if decision.deadline_missed else 0
        )
        failure[i] = (
            -1 if decision.failure is None else intern(decision.failure)
        )
    meta = {"kind": "decisions", "n": n, "vocab": vocab,
            "recovered": int(recovered)}
    arrays = {"idx": idx, "threads": threads, "tier": tier,
              "latency": latency, "flags": flags, "failure": failure}
    return meta, arrays


def decode_decisions(meta: dict, arrays: dict) -> Tuple[int, List[ServeDecision]]:
    """Inverse of :func:`encode_decisions`: ``(recovered, decisions)``."""
    if meta.get("kind") != "decisions":
        raise ValueError(f"expected a decision block, got {meta.get('kind')!r}")
    vocab = meta["vocab"]
    decisions: List[ServeDecision] = []
    for i in range(int(meta["n"])):
        threads = int(arrays["threads"][i])
        failure = int(arrays["failure"][i])
        flags = int(arrays["flags"][i])
        decisions.append(ServeDecision(
            index=int(arrays["idx"][i]),
            threads=None if threads < 0 else threads,
            tier=vocab[int(arrays["tier"][i])],
            latency_s=float(arrays["latency"][i]),
            shed=bool(flags & 1),
            deadline_missed=bool(flags & 2),
            failure=None if failure < 0 else vocab[failure],
        ))
    return int(meta.get("recovered", 0)), decisions


# -- the shard-side serving core -------------------------------------------


class ShardWorker:
    """One shard's serving core: a stateful server + the dedupe rule.

    Used both inline (deterministic tests, the failover twin) and as
    the body of a shard process.  The dedupe rule is what makes
    re-dispatch after failover lossless instead of double-serving:
    every request — served or shed — advances the journal, so after
    recovery ``server.next_index`` is exactly the first index the dead
    shard had *not* durably processed.  Re-delivered requests below it
    are answered with a :data:`RECOVERED_TIER` marker.
    """

    def __init__(self, policy: ThreadPolicy, config: ServeConfig,
                 state_dir: Optional[Union[str, Path]] = None):
        self.server = PolicyServer(policy, config, state_dir=state_dir)
        self.recovered = 0

    def serve_batch(
        self, position: int, batch: Sequence[ServeRequest]
    ) -> Tuple[List[ServeDecision], int]:
        """Serve one micro-batch; returns ``(decisions, deduped)``."""
        batch = list(batch)
        # A shard's substream has strictly increasing indices, so the
        # already-journaled part of a re-delivered batch is a prefix.
        skip = 0
        while skip < len(batch) and batch[skip].index < self.server.next_index:
            skip += 1
        decisions: List[ServeDecision] = [
            ServeDecision(index=request.index, threads=None,
                          tier=RECOVERED_TIER, latency_s=0.0)
            for request in batch[:skip]
        ]
        self.recovered += skip
        if skip < len(batch):
            decisions.extend(self.server.offer_batch(
                batch[skip:], start_position=position + skip
            ))
        return decisions, skip

    def report(self) -> ServeReport:
        return self.server.report()

    def state(self) -> dict:
        return self.server.policy.export_online_state()

    def close(self) -> None:
        self.server.close()


def _shard_worker_main(conn, policy_factory, state_dir, serve_config,
                       request_name, decision_name, ring_slots,
                       slot_bytes) -> None:
    """Shard process body: recover, announce readiness, serve doorbells.

    The worker *creates* both ring segments (under the parent-assigned
    names), so a worker killed mid-creation leaves at most a torn
    segment the parent's raw-unlink sweep handles.  Request blocks
    arrive as ``("req", slot, nbytes)`` doorbells; each is answered
    with a decision block in the same slot of the return ring.
    """
    request_ring = shm.ShmRing(request_name, ring_slots, slot_bytes,
                               create=True)
    decision_ring = shm.ShmRing(decision_name, ring_slots, slot_bytes,
                                create=True)
    try:
        worker = ShardWorker(policy_factory(), serve_config, state_dir)
        conn.send(("ready", worker.server.next_index))
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "req":
                _, slot, nbytes = message
                meta, arrays = request_ring.read(slot, nbytes)
                position, batch = decode_requests(meta, arrays)
                decisions, deduped = worker.serve_batch(position, batch)
                reply_meta, reply_arrays = encode_decisions(
                    decisions, recovered=deduped
                )
                written = decision_ring.write(slot, reply_meta,
                                              reply_arrays)
                conn.send(("dec", slot, written))
            elif kind == "stop":
                worker.close()
                conn.send(("stopped", worker.report(), worker.state()))
                break
            else:  # pragma: no cover - protocol error
                raise RuntimeError(f"unknown fleet message {kind!r}")
    except (EOFError, OSError, BrokenPipeError, KeyboardInterrupt):
        # Parent died or tore the pipe down: exit quietly; the parent
        # (or its ledger sweep) owns segment cleanup.
        pass
    finally:
        request_ring.close()
        decision_ring.close()
        try:
            conn.close()
        except OSError:
            pass


class _InlineShard:
    """In-process shard: same micro-batching, no transport.

    The deterministic twin for :func:`~repro.serve.soak.verify_fleet_recovery`
    and the single-core fallback — decisions are bit-identical to the
    process mode's because both run the same :class:`ShardWorker` over
    the same substream.
    """

    def __init__(self, index: int, policy_factory, serve_config,
                 state_dir):
        self.index = index
        self.worker = ShardWorker(policy_factory(), serve_config,
                                  state_dir)
        self.pending: List[ServeRequest] = []
        self.deadline: Optional[float] = None

    def dispatch(self, batch: List[ServeRequest], sink) -> None:
        decisions, deduped = self.worker.serve_batch(0, batch)
        sink(self.index, decisions, deduped)

    def collect_one(self, sink, blocking: bool = False) -> bool:
        return False  # nothing is ever in flight inline

    def stop(self, sink) -> Tuple[ServeReport, dict]:
        self.worker.close()
        return self.worker.report(), self.worker.state()


class _ProcessShard:
    """One shard process plus its rings, pipe and in-flight window."""

    def __init__(self, index: int, generation: int, policy_factory,
                 serve_config, state_dir, fleet_config: FleetConfig,
                 ledger: ShmLedger, mp_context):
        self.index = index
        self.generation = generation
        self.state_dir = state_dir
        self.pending: List[ServeRequest] = []
        self.deadline: Optional[float] = None
        #: slot -> (position, batch), oldest first (dict is ordered).
        self.inflight: Dict[int, Tuple[int, List[ServeRequest]]] = {}
        self.free_slots = list(range(fleet_config.ring_slots))
        self.request_name = ledger.issue(shm.segment_name())
        self.decision_name = ledger.issue(shm.segment_name())
        self.conn, child_conn = mp_context.Pipe()
        self.process = mp_context.Process(
            target=_shard_worker_main,
            args=(child_conn, policy_factory, state_dir, serve_config,
                  self.request_name, self.decision_name,
                  fleet_config.ring_slots, fleet_config.slot_bytes),
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        # Blocks until the worker has created both rings and finished
        # recovery; EOFError here means it died during startup.
        message = self.conn.recv()
        if message[0] != "ready":  # pragma: no cover - protocol error
            raise RuntimeError(f"shard sent {message[0]!r} before ready")
        self.resume_index = int(message[1])
        self.request_ring = shm.ShmRing(
            self.request_name, fleet_config.ring_slots,
            fleet_config.slot_bytes,
        )
        self.decision_ring = shm.ShmRing(
            self.decision_name, fleet_config.ring_slots,
            fleet_config.slot_bytes,
        )

    # -- transport ---------------------------------------------------------

    def dispatch(self, batch: List[ServeRequest], sink) -> None:
        """Ship one micro-batch; blocks for a free slot when the
        in-flight window is full (ring slots are the backpressure).

        The in-flight record is written only after a successful send:
        a batch that fails *here* is still owned by the caller (which
        re-dispatches it after failover), while a batch that fails
        *after* the send is owned by the in-flight window (which the
        failover teardown returns for re-dispatch) — each failed batch
        has exactly one owner, so none is lost or served twice.
        """
        while not self.free_slots:
            self.collect_one(sink, blocking=True)
        slot = self.free_slots.pop()
        meta, arrays = encode_requests(batch, start_position=0)
        nbytes = self.request_ring.write(slot, meta, arrays)
        self.conn.send(("req", slot, nbytes))
        self.inflight[slot] = (0, batch)

    def collect_one(self, sink, blocking: bool = False) -> bool:
        """Receive one decision doorbell; False when none is pending."""
        if not self.inflight:
            return False
        if not blocking and not self.conn.poll():
            return False
        message = self.conn.recv()
        if message[0] == "dec":
            _, slot, nbytes = message
            meta, arrays = self.decision_ring.read(slot, nbytes)
            deduped, decisions = decode_decisions(meta, arrays)
            self.inflight.pop(slot, None)
            self.free_slots.append(slot)
            sink(self.index, decisions, deduped)
            return True
        raise RuntimeError(  # pragma: no cover - protocol error
            f"unexpected fleet message {message[0]!r}"
        )

    def stop(self, sink) -> Tuple[ServeReport, dict]:
        while self.inflight:
            self.collect_one(sink, blocking=True)
        self.conn.send(("stop",))
        message = self.conn.recv()
        report, state = message[1], message[2]
        self.process.join(timeout=30)
        return report, state

    # -- failover ----------------------------------------------------------

    def kill(self) -> None:
        """SIGKILL the shard process (chaos injection for tests/CI)."""
        if self.process.pid is not None:
            try:
                os.kill(self.process.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
        self.process.join(timeout=30)

    def teardown(self, ledger: ShmLedger) -> List[Tuple[int, List[ServeRequest]]]:
        """Release a dead shard's resources; returns unacked batches."""
        if self.process.is_alive():  # pragma: no cover - defensive
            self.kill()
        try:
            self.conn.close()
        except OSError:
            pass
        self.request_ring.close()
        self.decision_ring.close()
        ledger.release(self.request_name)
        ledger.release(self.decision_name)
        return [
            (position, batch)
            for position, batch in self.inflight.values()
        ]


class PolicyFleet:
    """A sharded serving fleet behind one ``submit``/``drain`` surface.

    ``policy_factory`` builds a fresh policy per shard (and per shard
    *generation* after failover).  With ``processes=True`` each shard
    runs in its own forked process behind shared-memory rings and a
    ``state_root`` is mandatory — failover needs a journal to replay.
    Inline mode serves on the caller's thread with identical decisions.
    """

    def __init__(
        self,
        policy_factory: Callable[[], ThreadPolicy],
        config: Optional[FleetConfig] = None,
        *,
        state_root: Optional[Union[str, Path]] = None,
        processes: bool = False,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config or FleetConfig()
        self.router = ShardRouter(self.config.shards,
                                  self.config.replicas)
        self.ledger = ShmLedger()
        self.decisions: List[ServeDecision] = []
        self.shard_reports: List[ServeReport] = []
        self.shard_states: List[dict] = []
        self._policy_factory = policy_factory
        self._state_root = None if state_root is None else Path(state_root)
        self._processes = processes
        self._clock = clock
        self._recovered = 0
        self._failovers = 0
        self._started: Optional[float] = None
        self._closed = False
        if processes:
            if self._state_root is None:
                raise ValueError(
                    "process mode requires state_root (failover "
                    "replays the shard journal)"
                )
            if not shm.shm_available():
                raise RuntimeError(
                    "shared memory is unavailable; run the fleet "
                    "inline (processes=False)"
                )
            import multiprocessing

            self._mp = multiprocessing.get_context("fork")
        self._shards: List = [
            self._spawn(index, generation=0)
            for index in range(self.config.shards)
        ]

    # -- shard lifecycle ---------------------------------------------------

    def _shard_dir(self, index: int, generation: int) -> Optional[Path]:
        if self._state_root is None:
            return None
        if generation == 0:
            return self._state_root / f"shard-{index}"
        return self._state_root / f"shard-{index}-g{generation}"

    def _spawn(self, index: int, generation: int):
        state_dir = self._shard_dir(index, generation)
        if not self._processes:
            return _InlineShard(index, self._policy_factory,
                                self.config.serve, state_dir)
        return _ProcessShard(
            index, generation, self._policy_factory, self.config.serve,
            state_dir, self.config, self.ledger, self._mp,
        )

    def _failover(self, index: int) -> List[List[ServeRequest]]:
        """Replace a dead shard; returns its unacked batches, in order.

        The replacement recovers from an atomically *shipped* copy of
        the dead generation's journal + snapshots (exactly as a standby
        on another machine would); the dead directory survives for
        post-mortem.  The caller owns re-dispatching the returned
        batches — the replacement's dedupe rule answers the
        already-journaled prefix with :data:`RECOVERED_TIER` markers.
        """
        dead = self._shards[index]
        self._failovers += 1
        unacked = dead.teardown(self.ledger)
        generation = dead.generation + 1
        target = self._shard_dir(index, generation)
        ship_state(dead.state_dir, target)
        replacement = self._spawn(index, generation)
        replacement.pending = dead.pending
        replacement.deadline = dead.deadline
        self._shards[index] = replacement
        return [batch for _, batch in unacked]

    _PIPE_ERRORS = (EOFError, BrokenPipeError, OSError)

    def _dispatch(self, index: int, batch: List[ServeRequest]) -> None:
        """Dispatch with failover: a torn pipe replaces the shard and
        re-dispatches its unacked batches ahead of this one."""
        queue = [batch]
        deaths = 0
        while queue:
            shard = self._shards[index]
            try:
                shard.dispatch(queue[0], self._sink)
                queue.pop(0)
            except self._PIPE_ERRORS:
                deaths += 1
                if deaths > 3:
                    raise RuntimeError(
                        f"shard {index} died {deaths} times during "
                        "one dispatch; giving up"
                    )
                queue = self._failover(index) + queue

    def _collect(self, index: int, blocking: bool = False) -> bool:
        shard = self._shards[index]
        try:
            return shard.collect_one(self._sink, blocking)
        except self._PIPE_ERRORS:
            for batch in self._failover(index):
                self._dispatch(index, batch)
            return True

    # -- decision collection -----------------------------------------------

    def _sink(self, shard_index: int, decisions: List[ServeDecision],
              deduped: int) -> None:
        self.decisions.extend(decisions)
        self._recovered += deduped

    # -- public API --------------------------------------------------------

    def submit(self, request: ServeRequest,
               stream: Optional[str] = None) -> None:
        """Route one request to its stream's shard and micro-batch it.

        ``stream`` defaults to the loop name — the natural stream id of
        a mapping service, where each parallel region is a recurring
        decision stream.
        """
        if self._closed:
            raise RuntimeError("fleet is closed")
        if self._started is None:
            self._started = self._clock()
        key = stream if stream is not None else request.ctx.loop_name
        shard = self._shards[self.router.route(key)]
        shard.pending.append(request)
        if len(shard.pending) == 1:
            shard.deadline = self._clock() + self.config.batch_linger_s
        if len(shard.pending) >= self.config.batch_max:
            self._flush(shard.index)
        else:
            self.poll()

    def _flush(self, index: int) -> None:
        shard = self._shards[index]
        if not shard.pending:
            return
        batch, shard.pending = shard.pending, []
        shard.deadline = None
        self._dispatch(index, batch)

    def poll(self) -> None:
        """Opportunistic progress: expired lingers and ready decisions."""
        now = self._clock()
        for index in range(len(self._shards)):
            shard = self._shards[index]
            if shard.pending and shard.deadline is not None \
                    and now >= shard.deadline:
                self._flush(index)
        for index in range(len(self._shards)):
            self._collect(index)

    def drain(self) -> List[ServeDecision]:
        """Flush everything and wait for every in-flight decision."""
        for index in range(len(self._shards)):
            self._flush(index)
        for index in range(len(self._shards)):
            while getattr(self._shards[index], "inflight", None):
                self._collect(index, blocking=True)
        return self.decisions

    def kill_shard(self, index: int) -> int:
        """SIGKILL one shard process (chaos hook); returns its pid."""
        shard = self._shards[index]
        if not isinstance(shard, _ProcessShard):
            raise RuntimeError("kill_shard requires process mode")
        pid = shard.process.pid
        shard.kill()
        return pid

    def owner(self, stream: str) -> int:
        return self.router.route(stream)

    def close(self) -> FleetReport:
        """Drain, stop every shard, sweep segments, aggregate."""
        if self._closed:
            raise RuntimeError("fleet is already closed")
        self.drain()
        ended = self._clock()
        for index in range(len(self._shards)):
            while True:
                try:
                    report, state = self._shards[index].stop(self._sink)
                    break
                except self._PIPE_ERRORS:
                    # Died at the finish line: recover one last time so
                    # the aggregate still reflects the journal.
                    for batch in self._failover(index):
                        self._dispatch(index, batch)
            self.shard_reports.append(report)
            self.shard_states.append(state)
        self._closed = True
        self.ledger.sweep()
        wall = 0.0
        if self._started is not None:
            wall = max(0.0, ended - self._started)
        return self._aggregate(wall)

    def _aggregate(self, wall_s: float) -> FleetReport:
        histogram = FixedBucketHistogram()
        queue_depth = Gauge()
        batch_sizes = Gauge()
        for report in self.shard_reports:
            if report.latency_histogram.get("counts"):
                histogram.merge(report.latency_histogram)
            if report.queue_depth.get("count"):
                queue_depth.merge(report.queue_depth)
            if report.batch_sizes.get("count"):
                batch_sizes.merge(report.batch_sizes)
        answered = sum(
            1 for d in self.decisions if d.threads is not None
        )
        shed = sum(1 for d in self.decisions if d.shed)
        misses = sum(1 for d in self.decisions if d.deadline_missed)
        return FleetReport(
            shards=self.config.shards,
            total=len(self.decisions),
            answered=answered,
            shed=shed,
            deadline_misses=misses,
            recovered=self._recovered,
            failovers=self._failovers,
            wall_s=wall_s,
            per_shard=list(self.shard_reports),
            latency_histogram=histogram.snapshot(),
            queue_depth=queue_depth.snapshot(),
            batch_sizes=batch_sizes.snapshot(),
        )
