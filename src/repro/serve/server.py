"""The supervised decision loop: admission, deadlines, degradation.

A :class:`PolicyServer` wraps a thread policy behind the loop a
long-lived mapping service needs:

* **admission** — each arrival batch is admitted up to the queue
  capacity; the overflow is *explicitly shed* (a shed request gets a
  decision object saying so, never silence);
* **deadlines** — every answered request's wall-clock latency is
  ledgered (p50/p99 in the report); a tier that blows the per-decision
  budget is treated as failed and the cascade continues downward to a
  cheaper tier;
* **tiered degradation** — a :class:`~repro.serve.breaker.CircuitBreaker`
  walks the ladder mixture → best single expert → OpenMP default
  (``n = available processors``) on repeated failures, and half-open
  probes walk it back up when the world recovers;
* **an answer, always** — the final default tier cannot fail, and a
  last guard clamps every response into ``[1, available]``.

The wall clock is injectable (``clock=``) so deadline behaviour is
testable deterministically; the breaker counts requests, not seconds,
so degradation sequences are reproducible by construction.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from ..core.features import sanitize_features
from ..core.policies.base import PolicyContext, ThreadPolicy
from ..core.selector import SCALAR_BATCH_MAX
from ..runtime.metrics import Gauge, LatencyLedger
from ..runtime.tracing import ServeTracer
from .breaker import BreakerConfig, CircuitBreaker
from .journal import ServeStateStore
from .report import ServeReport


@dataclass(frozen=True)
class ServeRequest:
    """One decision request: a stream index plus the policy context."""

    index: int
    ctx: PolicyContext


@dataclass(frozen=True)
class ServeDecision:
    """The server's answer (or explicit non-answer) to one request."""

    index: int
    #: Final thread count, always in [1, available]; None when shed.
    threads: Optional[int]
    #: Name of the tier that produced the answer ("shed" when shed).
    tier: str
    latency_s: float
    shed: bool = False
    deadline_missed: bool = False
    #: Failure reason of the *preferred* tier when the answer came from
    #: a lower one (None for a clean first-tier answer).
    failure: Optional[str] = None


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of the serving loop."""

    #: Requests admitted per arrival batch; the rest are shed.
    queue_capacity: int = 64
    #: Per-decision wall-clock budget, seconds.
    deadline_s: float = 0.050
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    #: Requests between full-state snapshots (when serving stateful).
    snapshot_interval: int = 256

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")


class TierFailure(Exception):
    """A tier declined to produce a trustworthy decision."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class _PolicyTier:
    """Tier 0: the wrapped policy itself (normally the mixture).

    A policy-internal safe-default fallback (degenerate features) is
    surfaced as a tier failure: the answer it would give is exactly the
    default tier's answer, and the breaker needs to see the distrust.
    """

    def __init__(self, policy: ThreadPolicy):
        self.policy = policy
        self.name = policy.name

    def decide(self, ctx: PolicyContext, planned=None) -> int:
        before = int(getattr(self.policy, "fallback_count", 0) or 0)
        if planned is None:
            threads = self.policy.select(ctx)
        else:
            # Batch path: the pure per-expert work was precomputed by
            # plan_batch; the sequential learn/select core still runs
            # here, so the decision is bit-identical to select().
            plan, row = planned
            threads = self.policy._select_planned(ctx, plan, row)
        after = int(getattr(self.policy, "fallback_count", 0) or 0)
        if after > before:
            raise TierFailure("degenerate-features")
        return threads


class _BestExpertTier:
    """Tier 1: the mixture's single most-trusted expert, no learning.

    Cheaper and simpler than the mixture (one model evaluation, no
    selector, no state mutation), but still feature-driven — so it too
    refuses degenerate inputs and lets the breaker continue to the
    unconditional default.
    """

    name = "expert"

    def __init__(self, policy):
        self.policy = policy

    def decide(self, ctx: PolicyContext, planned=None) -> int:
        features, degenerate = sanitize_features(ctx.feature_vector())
        if degenerate:
            raise TierFailure("degenerate-features")
        expert = self.policy.experts[self.policy.best_expert_index()]
        return ctx.snap_to_available(
            expert.predict_threads(features, ctx.max_threads)
        )


class _DefaultTier:
    """Final tier: the OpenMP default, one thread per available
    processor.  Pure arithmetic on trusted fields — cannot fail."""

    name = "default"

    def decide(self, ctx: PolicyContext, planned=None) -> int:
        return ctx.clamp(ctx.available_processors)


def _build_tiers(policy: ThreadPolicy) -> List:
    tiers: List = [_PolicyTier(policy)]
    if hasattr(policy, "best_expert_index") and hasattr(policy, "experts"):
        tiers.append(_BestExpertTier(policy))
    tiers.append(_DefaultTier())
    return tiers


class PolicyServer:
    """Long-lived, supervised serving of one thread policy.

    With ``state_dir`` set (and a policy that supports online-state
    export), construction *recovers*: the newest good snapshot is
    loaded, the journal tail replayed, the breaker restored, and
    :attr:`next_index` points at the first request the restarted server
    should see — all before journaling re-attaches, so recovery itself
    is never re-journaled.
    """

    def __init__(
        self,
        policy: ThreadPolicy,
        config: Optional[ServeConfig] = None,
        *,
        state_dir: Optional[Union[str, Path]] = None,
        clock: Callable[[], float] = time.perf_counter,
        tracer: Optional[ServeTracer] = None,
    ):
        self.policy = policy
        self.config = config or ServeConfig()
        self._clock = clock
        self.tracer = tracer
        self.tiers = _build_tiers(policy)
        self.breaker = CircuitBreaker(
            len(self.tiers), self.config.breaker
        )
        self.latency = LatencyLedger()
        self.queue_depth = Gauge()
        self.batch_sizes = Gauge()
        self._failures: dict = {}
        self._tier_decisions: dict = {}
        self._transitions: list = []
        self._total = 0
        self._answered = 0
        self._shed = 0
        self._deadline_misses = 0
        self._clamped = 0
        self.store: Optional[ServeStateStore] = None
        self.next_index = 0
        if state_dir is not None:
            if not hasattr(policy, "export_online_state"):
                raise TypeError(
                    f"policy {policy.name!r} cannot persist online "
                    "state; serve it without state_dir"
                )
            self.store = ServeStateStore(
                state_dir, policy,
                snapshot_interval=self.config.snapshot_interval,
            )
            self.next_index, extra = self.store.recover()
            breaker_state = extra.get("breaker")
            if breaker_state:
                self.breaker.load_state(breaker_state)
            self.store.attach()

    # -- the decision loop ------------------------------------------------

    def _attempt(self, tier, ctx: PolicyContext, start: float,
                 enforce_deadline: bool, planned=None):
        """One tier's try: ``(threads, None)`` or ``(None, reason)``."""
        try:
            threads = tier.decide(ctx, planned)
        except TierFailure as failure:
            return None, failure.reason
        except Exception:
            return None, "exception"
        if (isinstance(threads, float) and not math.isfinite(threads)):
            return None, "non-finite"
        try:
            threads = int(threads)
        except (TypeError, ValueError):
            return None, "non-finite"
        if threads < 1 or threads > ctx.max_threads:
            return None, "out-of-range"
        if (enforce_deadline
                and self._clock() - start > self.config.deadline_s):
            return None, "deadline"
        return threads, None

    def _record_transition(self, index: int, from_tier: str,
                           to_tier: str, reason: str) -> None:
        if self.tracer is not None:
            self.tracer.record(index, from_tier, to_tier, reason)
            self._transitions = self.tracer.transitions
        else:
            from ..runtime.tracing import TierTransition
            self._transitions.append(TierTransition(
                request_index=index, from_tier=from_tier,
                to_tier=to_tier, reason=reason,
            ))

    def _serve(self, request: ServeRequest,
               planned=None) -> ServeDecision:
        ctx = request.ctx
        start = self._clock()
        probing = self.breaker.wants_probe()
        resting_tier = self.breaker.tier
        start_tier = resting_tier - 1 if probing else resting_tier
        answer: Optional[int] = None
        answer_tier = self.tiers[-1].name
        first_failure: Optional[str] = None
        for i in range(start_tier, len(self.tiers)):
            tier = self.tiers[i]
            is_default = i == len(self.tiers) - 1
            threads, reason = self._attempt(
                tier, ctx, start, enforce_deadline=not is_default,
                planned=planned if i == 0 else None,
            )
            ok = reason is None
            if i == start_tier:
                if probing:
                    upper = self.tiers[start_tier].name
                    lower = self.tiers[resting_tier].name
                    verdict = self.breaker.record_probe(ok)
                    if verdict == "probe":
                        self._record_transition(
                            request.index, lower, upper, "probe")
                    elif verdict == "probe-failed":
                        self._record_transition(
                            request.index, upper, lower, "probe-failed")
                else:
                    verdict = self.breaker.record_result(ok)
                    if verdict == "trip":
                        self._record_transition(
                            request.index,
                            self.tiers[resting_tier].name,
                            self.tiers[self.breaker.tier].name,
                            "trip")
            if ok:
                answer = threads
                answer_tier = tier.name
                break
            self._failures[reason] = self._failures.get(reason, 0) + 1
            if first_failure is None:
                first_failure = reason
        if answer is None:  # unreachable: the default tier cannot fail
            answer = ctx.clamp(ctx.available_processors)
        clamped = max(1, min(answer, ctx.available_processors))
        if clamped != answer:
            self._clamped += 1
        elapsed = self._clock() - start
        missed = elapsed > self.config.deadline_s
        if missed:
            self._deadline_misses += 1
        self.latency.record(elapsed)
        self._answered += 1
        self._tier_decisions[answer_tier] = (
            self._tier_decisions.get(answer_tier, 0) + 1
        )
        return ServeDecision(
            index=request.index,
            threads=clamped,
            tier=answer_tier,
            latency_s=elapsed,
            deadline_missed=missed,
            failure=first_failure,
        )

    # -- public API -------------------------------------------------------

    def offer(
        self, batch: Sequence[ServeRequest], start_position: int = 0
    ) -> List[ServeDecision]:
        """Serve one arrival batch; overflow beyond the queue capacity
        is shed explicitly.  Every request — served or shed — advances
        the journal, so a restart resumes at the right stream point.

        ``start_position`` is where the batch's first request sits in
        its logical arrival group — non-zero when a restarted stream
        resumes mid-burst, so admission decisions stay identical to the
        uninterrupted stream's."""
        return self._offer(list(batch), start_position, plan=None)

    def offer_batch(
        self, batch: Sequence[ServeRequest], start_position: int = 0
    ) -> List[ServeDecision]:
        """Vectorized :meth:`offer` — bit-identical decisions.

        The pure per-expert work for the admitted prefix is precomputed
        in one batch plan (:meth:`MixturePolicy.plan_batch`); admission,
        breaker walks, journaling and the sequential learn/select core
        are the exact same code path as :meth:`offer`.  Falls back to
        the scalar loop for tiny batches, non-mixture policies, and
        online-learning experts.
        """
        batch = list(batch)
        return self._offer(
            batch, start_position, plan=self._plan(batch, start_position)
        )

    def _plan(self, batch: List[ServeRequest], start_position: int):
        plan_batch = getattr(self.policy, "plan_batch", None)
        if plan_batch is None:
            return None
        capacity = self.config.queue_capacity
        admitted = batch[:max(0, capacity - start_position)]
        if len(admitted) <= SCALAR_BATCH_MAX:
            return None
        rows = np.stack(
            [request.ctx.feature_vector() for request in admitted]
        )
        limits = np.array(
            [request.ctx.max_threads for request in admitted],
            dtype=np.int64,
        )
        return plan_batch(rows, limits)

    def _offer(
        self, batch: List[ServeRequest], start_position: int, plan
    ) -> List[ServeDecision]:
        decisions: List[ServeDecision] = []
        capacity = self.config.queue_capacity
        self.queue_depth.record(start_position + len(batch))
        self.batch_sizes.record(len(batch))
        for offset, request in enumerate(batch):
            position = start_position + offset
            self._total += 1
            if position >= capacity:
                self._shed += 1
                decisions.append(ServeDecision(
                    index=request.index, threads=None, tier="shed",
                    latency_s=0.0, shed=True,
                ))
            else:
                planned = None if plan is None else (plan, offset)
                decisions.append(self._serve(request, planned))
            if self.store is not None:
                extra = {"breaker": self.breaker.export_state()}
                self.store.commit(request.index, extra)
                self.store.maybe_snapshot(request.index, extra)
            self.next_index = request.index + 1
        return decisions

    def serve_one(self, request: ServeRequest) -> ServeDecision:
        (decision,) = self.offer([request])
        return decision

    def close(self) -> None:
        """Flush and detach cleanly (a crash simply skips this)."""
        if self.store is not None:
            self.store.detach()
            self.store.close()

    def report(self) -> ServeReport:
        return ServeReport(
            total=self._total,
            answered=self._answered,
            shed=self._shed,
            deadline_misses=self._deadline_misses,
            clamped=self._clamped,
            failures=dict(self._failures),
            tier_decisions=dict(self._tier_decisions),
            transitions=list(self._transitions),
            trips=self.breaker.trips,
            recoveries=self.breaker.recoveries,
            probe_failures=self.breaker.probe_failures,
            final_tier=self.tiers[self.breaker.tier].name,
            latency=self.latency.snapshot(),
            latency_histogram=self.latency.histogram.snapshot(),
            queue_depth=self.queue_depth.snapshot(),
            batch_sizes=self.batch_sizes.snapshot(),
            journal=self.store.stats() if self.store else {},
        )
