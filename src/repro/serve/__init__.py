"""Resilient policy serving: the runtime the mapper would ship inside.

The paper's mixture-of-experts mapper is consulted at every parallel-
region entry of a long-lived process; this package wraps any
:class:`~repro.core.policies.base.ThreadPolicy` behind the supervised
decision loop such a deployment needs:

* :mod:`repro.serve.server` — admission with explicit shedding,
  per-decision deadlines with a p50/p99 latency ledger, and an answer
  for every admitted request;
* :mod:`repro.serve.breaker` — a request-counted circuit breaker
  walking the degradation ladder mixture → best single expert →
  OpenMP default, with half-open probing back up;
* :mod:`repro.serve.journal` — a write-ahead journal of selector
  operations plus checksummed snapshots, so a restart resumes online
  learning with bit-identical state;
* :mod:`repro.serve.fleet` — the sharded serving fleet: consistent-hash
  routing by stream id, per-shard micro-batching into the vectorized
  decision path, shared-memory request/decision rings, and lossless
  shard failover (snapshot shipping + journal replay);
* :mod:`repro.serve.soak` — the chaos-composed soak harness behind
  ``repro serve-soak`` and ``repro serve-fleet``, including the
  kill/restart and shard-kill lossless-recovery verifiers.

See the "Serving failure model" section of ``docs/robustness.md``.
"""

from .breaker import BreakerConfig, CircuitBreaker
from .fleet import (
    FleetConfig,
    PolicyFleet,
    ShardRouter,
    ShardWorker,
)
from .journal import (
    SelectorJournal,
    ServeStateStore,
    SnapshotStore,
    ship_state,
)
from .report import FleetReport, ServeReport
from .server import (
    PolicyServer,
    ServeConfig,
    ServeDecision,
    ServeRequest,
    TierFailure,
)
from .soak import (
    SoakInvariantError,
    SoakSpec,
    build_policy,
    make_request,
    request_batches,
    run_fleet_soak,
    run_soak,
    tiny_training_config,
    verify_fleet_recovery,
    verify_recovery,
)

__all__ = [
    "BreakerConfig",
    "CircuitBreaker",
    "FleetConfig",
    "FleetReport",
    "PolicyFleet",
    "PolicyServer",
    "SelectorJournal",
    "ServeConfig",
    "ServeDecision",
    "ServeReport",
    "ServeRequest",
    "ServeStateStore",
    "ShardRouter",
    "ShardWorker",
    "SnapshotStore",
    "SoakInvariantError",
    "SoakSpec",
    "TierFailure",
    "build_policy",
    "make_request",
    "request_batches",
    "run_fleet_soak",
    "run_soak",
    "ship_state",
    "tiny_training_config",
    "verify_fleet_recovery",
    "verify_recovery",
]
