"""Resilient policy serving: the runtime the mapper would ship inside.

The paper's mixture-of-experts mapper is consulted at every parallel-
region entry of a long-lived process; this package wraps any
:class:`~repro.core.policies.base.ThreadPolicy` behind the supervised
decision loop such a deployment needs:

* :mod:`repro.serve.server` — admission with explicit shedding,
  per-decision deadlines with a p50/p99 latency ledger, and an answer
  for every admitted request;
* :mod:`repro.serve.breaker` — a request-counted circuit breaker
  walking the degradation ladder mixture → best single expert →
  OpenMP default, with half-open probing back up;
* :mod:`repro.serve.journal` — a write-ahead journal of selector
  operations plus checksummed snapshots, so a restart resumes online
  learning with bit-identical state;
* :mod:`repro.serve.fleet` — the sharded serving fleet: consistent-hash
  routing by stream id, per-shard micro-batching into the vectorized
  decision path, shared-memory request/decision rings, and lossless
  shard failover (snapshot shipping + journal replay);
* :mod:`repro.serve.resize` — live elastic resharding: ring-delta
  planning, drain barriers, staged state shipping, and the atomic
  topology-epoch swap behind ``PolicyFleet.resize``;
* :mod:`repro.serve.supervisor` — the supervising fleet controller:
  heartbeats over the control pipes, deadline liveness verdicts,
  exponential-backoff restart budgets, and graceful degradation
  (evacuate / reinstate);
* :mod:`repro.serve.soak` — the chaos-composed soak harness behind
  ``repro serve-soak``, ``repro serve-fleet`` and ``repro
  serve-resize``, including the kill/restart, shard-kill, and live-
  resize lossless-recovery verifiers.

See the "Serving failure model" and "Live resharding & supervision"
sections of ``docs/robustness.md``.
"""

from .breaker import BreakerConfig, CircuitBreaker
from .fleet import (
    FleetConfig,
    PolicyFleet,
    ShardLostError,
    ShardRouter,
    ShardWorker,
    stream_dirname,
)
from .journal import (
    SelectorJournal,
    ServeStateStore,
    SnapshotStore,
    ship_state,
)
from .report import FleetReport, ServeReport, merge_serve_reports
from .resize import (
    RESIZE_STEPS,
    FleetTopology,
    ResizePlan,
    execute_resize,
    plan_resize,
    sweep_state_root,
)
from .server import (
    PolicyServer,
    ServeConfig,
    ServeDecision,
    ServeRequest,
    TierFailure,
)
from .soak import (
    SoakInvariantError,
    SoakSpec,
    build_policy,
    make_request,
    request_batches,
    run_fleet_soak,
    run_soak,
    tiny_training_config,
    verify_fleet_recovery,
    verify_recovery,
    verify_resize,
)
from .supervisor import FleetSupervisor, SupervisorConfig

__all__ = [
    "BreakerConfig",
    "CircuitBreaker",
    "FleetConfig",
    "FleetReport",
    "FleetSupervisor",
    "FleetTopology",
    "PolicyFleet",
    "PolicyServer",
    "RESIZE_STEPS",
    "ResizePlan",
    "SelectorJournal",
    "ServeConfig",
    "ServeDecision",
    "ServeReport",
    "ServeRequest",
    "ServeStateStore",
    "ShardLostError",
    "ShardRouter",
    "ShardWorker",
    "SnapshotStore",
    "SoakInvariantError",
    "SoakSpec",
    "SupervisorConfig",
    "TierFailure",
    "build_policy",
    "execute_resize",
    "make_request",
    "merge_serve_reports",
    "plan_resize",
    "request_batches",
    "run_fleet_soak",
    "run_soak",
    "ship_state",
    "stream_dirname",
    "sweep_state_root",
    "tiny_training_config",
    "verify_fleet_recovery",
    "verify_recovery",
    "verify_resize",
]
