"""Resilient policy serving: the runtime the mapper would ship inside.

The paper's mixture-of-experts mapper is consulted at every parallel-
region entry of a long-lived process; this package wraps any
:class:`~repro.core.policies.base.ThreadPolicy` behind the supervised
decision loop such a deployment needs:

* :mod:`repro.serve.server` — admission with explicit shedding,
  per-decision deadlines with a p50/p99 latency ledger, and an answer
  for every admitted request;
* :mod:`repro.serve.breaker` — a request-counted circuit breaker
  walking the degradation ladder mixture → best single expert →
  OpenMP default, with half-open probing back up;
* :mod:`repro.serve.journal` — a write-ahead journal of selector
  operations plus checksummed snapshots, so a restart resumes online
  learning with bit-identical state;
* :mod:`repro.serve.soak` — the chaos-composed soak harness behind
  ``repro serve-soak``, including the kill/restart lossless-recovery
  verifier.

See the "Serving failure model" section of ``docs/robustness.md``.
"""

from .breaker import BreakerConfig, CircuitBreaker
from .journal import (
    SelectorJournal,
    ServeStateStore,
    SnapshotStore,
)
from .report import ServeReport
from .server import (
    PolicyServer,
    ServeConfig,
    ServeDecision,
    ServeRequest,
    TierFailure,
)
from .soak import (
    SoakInvariantError,
    SoakSpec,
    build_policy,
    make_request,
    request_batches,
    run_soak,
    tiny_training_config,
    verify_recovery,
)

__all__ = [
    "BreakerConfig",
    "CircuitBreaker",
    "PolicyServer",
    "SelectorJournal",
    "ServeConfig",
    "ServeDecision",
    "ServeReport",
    "ServeRequest",
    "ServeStateStore",
    "SnapshotStore",
    "SoakInvariantError",
    "SoakSpec",
    "TierFailure",
    "build_policy",
    "make_request",
    "request_batches",
    "run_soak",
    "tiny_training_config",
    "verify_recovery",
]
