"""Soak harness: drive the server through composed chaos, then assert.

The harness synthesizes a long request stream — bursty arrivals,
flapping processor availability, a window of sensor faults — and runs a
:class:`~repro.serve.server.PolicyServer` over it, checking the
invariants the serving contract promises:

* no unhandled exception escapes the decision loop;
* every request is answered or explicitly shed, nothing vanishes;
* every answered thread count lies in ``[1, available]`` for that
  request's availability;
* after a mid-run kill, a restarted server resumes from its journal
  and snapshot with *bit-identical* learning state (verified against
  an uninterrupted twin run).

Everything about the stream is a pure function of ``(spec, index)`` —
environment values, burst boundaries, availability, and sensor
corruption (via the stateless
:func:`~repro.chaos.sensors.corrupt_sample`) — so the stream a
restarted server sees from request ``k`` onward is exactly the stream
the dead server would have seen.  That property is what makes the
kill/restart comparison meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import (Dict, Iterator, List, Mapping, Optional, Sequence,
                    Tuple, Union)

import numpy as np

from ..chaos.availability import AvailabilityFlap
from ..chaos.sensors import SensorFaultSpec, corrupt_sample
from ..compiler.features import CodeFeatures
from ..core.features import NUM_FEATURES
from ..core.policies.base import PolicyContext
from ..core.policies.mixture import MixturePolicy
from ..core.selector import HyperplaneSelector
from ..core.training import ExpertBundle, TrainingConfig
from ..machine.availability import StaticAvailability
from ..sched.stats import EnvironmentSample
from .fleet import RECOVERED_TIER, FleetConfig, PolicyFleet
from .report import FleetReport, ServeReport
from .server import (
    PolicyServer,
    ServeConfig,
    ServeDecision,
    ServeRequest,
)

#: Simulated seconds between consecutive request indices.
REQUEST_DT = 0.25

#: Synthetic parallel regions the stream cycles through (name, code
#: features) — a few distinct loops so the feature space has structure.
_LOOPS: Tuple[Tuple[str, CodeFeatures], ...] = (
    ("stream_triad", CodeFeatures(0.42, 0.31, 0.02)),
    ("stencil", CodeFeatures(0.18, 0.44, 0.09)),
    ("reduction", CodeFeatures(0.07, 0.22, 0.15)),
    ("spmv", CodeFeatures(0.33, 0.27, 0.05)),
)


def tiny_training_config() -> TrainingConfig:
    """The miniature training configuration used by ``--tiny`` soaks.

    Mirrors the test suite's tiny fixture: two targets, one
    single-program workload, shallow sweeps — trains in seconds and is
    disk-cached by the training pipeline.
    """
    return TrainingConfig(
        target_names=("cg", "ep"),
        workload_names=("is",),
        workload_bundles=((), ("is", "ft")),
        workload_fractions=(0.5,),
        availability_levels=(0.5, 1.0),
        iterations_scale=0.05,
        max_samples_per_run=6,
    )


@dataclass(frozen=True)
class SoakSpec:
    """Deterministic description of one soak run's request stream."""

    requests: int = 10_000
    seed: int = 0
    #: Machine size and per-decision thread ceiling.
    processors: int = 16
    max_threads: int = 32
    #: Availability flapping (None = static full machine).
    flap_period: float = 40.0
    flap_fraction: float = 0.5
    #: Sensor faults, active only inside the fault window (fractions of
    #: the stream, so the ladder can degrade *and* recover).
    sensor: Optional[SensorFaultSpec] = None
    fault_window: Tuple[float, float] = (0.3, 0.6)
    #: Every ``burst_period``-th index arrives in a batch of
    #: ``burst_size`` requests (storm arrivals exercising admission).
    burst_period: int = 97
    burst_size: int = 12

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.processors < 1 or self.max_threads < 1:
            raise ValueError("processors/max_threads must be >= 1")
        low, high = self.fault_window
        if not 0.0 <= low <= high <= 1.0:
            raise ValueError("fault_window must satisfy 0 <= lo <= hi <= 1")
        if self.burst_period < 1 or self.burst_size < 1:
            raise ValueError("burst_period/burst_size must be >= 1")
        if self.burst_size > self.burst_period:
            raise ValueError("bursts may not overlap "
                             "(burst_size > burst_period)")

    def availability(self) -> AvailabilityFlap:
        return AvailabilityFlap(
            base=StaticAvailability(self.processors),
            period=self.flap_period,
            surviving_fraction=self.flap_fraction,
            duty=0.4,
        )

    def fault_active(self, index: int) -> bool:
        low, high = self.fault_window
        return low * self.requests <= index < high * self.requests


def _clean_env(spec: SoakSpec, index: int,
               available: int) -> EnvironmentSample:
    """The uncorrupted environment sample for one request index."""
    rng = np.random.default_rng([spec.seed, index, 1])
    workload = float(rng.uniform(0.0, spec.processors / 2))
    return EnvironmentSample(
        time=index * REQUEST_DT,
        workload_threads=workload,
        processors=float(available),
        runq_sz=float(rng.uniform(0.0, spec.processors / 4)),
        ldavg_1=workload * float(rng.uniform(0.6, 1.1)),
        ldavg_5=workload * float(rng.uniform(0.5, 1.0)),
        cached_memory=float(rng.uniform(0.1, 2.0)),
        pages_free_rate=float(rng.uniform(0.0, 1.0)),
    )


def make_request(spec: SoakSpec, index: int) -> ServeRequest:
    """The request at stream position ``index`` — a pure function."""
    schedule = spec.availability()
    available = schedule.available(index * REQUEST_DT)
    env = _clean_env(spec, index, available)
    if spec.sensor is not None and spec.fault_active(index):
        previous = _clean_env(
            spec, index - 1,
            schedule.available((index - 1) * REQUEST_DT),
        ) if index > 0 else None
        env = corrupt_sample(spec.sensor, index, env, previous)
    name, code = _LOOPS[index % len(_LOOPS)]
    ctx = PolicyContext(
        time=index * REQUEST_DT,
        loop_name=name,
        code=code,
        env=env,
        available_processors=available,
        max_threads=spec.max_threads,
    )
    return ServeRequest(index=index, ctx=ctx)


def request_batches(
    spec: SoakSpec, start_index: int = 0
) -> Iterator[Tuple[int, List[ServeRequest]]]:
    """``(start_position, batch)`` pairs from ``start_index`` onward.

    Most indices arrive alone; every ``burst_period``-th index opens a
    storm batch of ``burst_size`` requests.  Burst membership is a pure
    function of the absolute index, and ``start_position`` says where
    the batch's first request sits inside its logical burst — so a
    stream resumed mid-burst sheds exactly the members the
    uninterrupted stream would have shed (admission is by position in
    the arrival batch, and positions must survive a restart).
    """
    index = start_index
    while index < spec.requests:
        burst = (index // spec.burst_period) * spec.burst_period
        if burst > 0 and index < burst + spec.burst_size:
            end = min(burst + spec.burst_size, spec.requests)
            position = index - burst
        else:
            end = index + 1
            position = 0
        yield position, [
            make_request(spec, i) for i in range(index, end)
        ]
        index = end


def build_policy(bundle: ExpertBundle) -> MixturePolicy:
    """The served policy: the paper's mixture over ``bundle``."""
    return MixturePolicy(
        bundle.experts,
        selector=HyperplaneSelector(
            num_experts=len(bundle.experts), dim=NUM_FEATURES,
        ),
    )


class SoakInvariantError(AssertionError):
    """A serving invariant was violated during the soak."""


def _check_decisions(
    batch: List[ServeRequest], decisions: List[ServeDecision]
) -> None:
    if len(decisions) != len(batch):
        raise SoakInvariantError(
            f"batch of {len(batch)} produced {len(decisions)} decisions"
        )
    for request, decision in zip(batch, decisions):
        if decision.shed:
            continue
        available = request.ctx.available_processors
        if decision.threads is None or not (
                1 <= decision.threads <= available):
            raise SoakInvariantError(
                f"request {request.index}: threads {decision.threads} "
                f"outside [1, {available}]"
            )


def run_soak(
    spec: SoakSpec,
    bundle: ExpertBundle,
    *,
    state_dir: Optional[Union[str, Path]] = None,
    config: Optional[ServeConfig] = None,
    kill_at: Optional[int] = None,
    collect: bool = False,
) -> Tuple[ServeReport, List[ServeDecision]]:
    """Drive a server over the spec's stream, checking invariants.

    With ``state_dir``, serving is stateful and resumes from whatever
    the directory holds.  ``kill_at`` stops the loop the moment the
    next batch would start at or beyond that index — the server is
    *abandoned*, not closed, like a process that just died.  Rerunning
    with the same ``state_dir`` finishes the stream.
    """
    policy = build_policy(bundle)
    server = PolicyServer(policy, config, state_dir=state_dir)
    decisions: List[ServeDecision] = []
    killed = False
    for position, batch in request_batches(spec, server.next_index):
        if kill_at is not None and batch[0].index >= kill_at:
            killed = True
            break
        batch_decisions = server.offer(batch, start_position=position)
        _check_decisions(batch, batch_decisions)
        if collect:
            decisions.extend(batch_decisions)
    report = server.report()
    if not killed:
        server.close()
    return report, decisions


def verify_recovery(
    spec: SoakSpec,
    bundle: ExpertBundle,
    kill_at: int,
    state_dir: Union[str, Path],
    *,
    config: Optional[ServeConfig] = None,
) -> dict:
    """Kill/restart vs uninterrupted twin: lossless-recovery check.

    Runs the stream twice: once straight through (stateless), once
    with a kill at ``kill_at`` followed by a restart that resumes from
    ``state_dir``.  Returns a comparison dict; raises
    :class:`SoakInvariantError` when the restarted run's selector
    state or post-kill decisions differ from the twin's.
    """
    if not 0 < kill_at < spec.requests:
        raise ValueError("kill_at must fall inside the stream")
    # Twin A: never crashes.  Serve it statefully too (in a scratch
    # subdirectory) so both runs pay the same code paths.
    twin_dir = Path(state_dir) / "twin"
    twin_policy = build_policy(bundle)
    twin = PolicyServer(twin_policy, config, state_dir=twin_dir)
    twin_decisions: List[ServeDecision] = []
    for position, batch in request_batches(spec, 0):
        twin_decisions.extend(twin.offer(batch, start_position=position))
    twin.close()

    # Twin B: killed mid-run, restarted, finishes the stream.
    crash_dir = Path(state_dir) / "crashed"
    run_soak(spec, bundle, state_dir=crash_dir, config=config,
             kill_at=kill_at)
    resumed_policy = build_policy(bundle)
    resumed = PolicyServer(resumed_policy, config, state_dir=crash_dir)
    resumed_from = resumed.next_index
    resumed_decisions: List[ServeDecision] = []
    for position, batch in request_batches(spec, resumed.next_index):
        resumed_decisions.extend(
            resumed.offer(batch, start_position=position)
        )
    resumed.close()

    # Bit-identical learning state ...
    twin_state = twin_policy.export_online_state()["selector"]
    resumed_state = resumed_policy.export_online_state()["selector"]
    mismatches = _state_mismatches(twin_state, resumed_state)
    if mismatches:
        raise SoakInvariantError(
            "selector state diverged after recovery: "
            + ", ".join(mismatches)
        )
    # ... and bit-identical post-restart decisions.
    by_index = {d.index: d for d in twin_decisions}
    for decision in resumed_decisions:
        twin_decision = by_index[decision.index]
        if (decision.threads, decision.tier, decision.shed) != (
                twin_decision.threads, twin_decision.tier,
                twin_decision.shed):
            raise SoakInvariantError(
                f"decision {decision.index} diverged after recovery: "
                f"{decision.threads}@{decision.tier} vs twin "
                f"{twin_decision.threads}@{twin_decision.tier}"
            )
    return {
        "kill_at": kill_at,
        "resumed_from": resumed_from,
        "compared_decisions": len(resumed_decisions),
        "identical": True,
    }


# -- fleet mode -------------------------------------------------------------


def _fleet_policy_factory(bundle: ExpertBundle):
    """A picklable zero-arg policy factory over ``bundle``."""
    import functools

    return functools.partial(build_policy, bundle)


def _check_fleet_decisions(
    spec: SoakSpec, decisions: List[ServeDecision]
) -> None:
    """Fleet-level invariants: nothing vanishes, every answer is legal.

    ``RECOVERED_TIER`` markers (failover re-deliveries the replacement
    shard recognised as already journaled) are legitimate non-answers:
    the original decision was already delivered before the crash or is
    unrecoverable by design, and the marker proves the request was not
    silently dropped.
    """
    seen = {}
    for decision in decisions:
        seen[decision.index] = seen.get(decision.index, 0) + 1
    schedule = spec.availability()
    for index in range(spec.requests):
        if seen.get(index, 0) != 1:
            raise SoakInvariantError(
                f"request {index} yielded {seen.get(index, 0)} "
                "decisions (expected exactly 1)"
            )
    for decision in decisions:
        if decision.shed or decision.tier == RECOVERED_TIER:
            continue
        available = schedule.available(decision.index * REQUEST_DT)
        if decision.threads is None or not (
                1 <= decision.threads <= available):
            raise SoakInvariantError(
                f"request {decision.index}: threads {decision.threads} "
                f"outside [1, {available}]"
            )


def run_fleet_soak(
    spec: SoakSpec,
    bundle: ExpertBundle,
    *,
    config: Optional[FleetConfig] = None,
    state_root: Optional[Union[str, Path]] = None,
    processes: bool = False,
    kill_at: Optional[int] = None,
    resize_at: Optional[Mapping[int, Union[int, Sequence[int]]]] = None,
    supervise: bool = False,
) -> Tuple[FleetReport, List[ServeDecision], Dict[str, dict]]:
    """Drive a sharded fleet over the spec's stream, checking invariants.

    The fleet consumes the stream one request at a time (micro-batching
    replaces the single-server burst batches); routing keys on the loop
    name, so each synthetic parallel region is a stream pinned to one
    shard.  With ``kill_at`` (process mode only), the shard owning the
    request at that index is SIGKILLed just before it is submitted —
    the failover machinery must recover and finish the stream.  With
    ``resize_at`` (request index -> shard count or member list), the
    fleet is live-resized just before that index is submitted; with
    ``supervise``, a :class:`FleetSupervisor` arbitrates losses
    (heartbeats, restart budgets, evacuation).
    """
    config = config or FleetConfig()
    fleet = PolicyFleet(
        _fleet_policy_factory(bundle), config,
        state_root=state_root, processes=processes,
    )
    if supervise:
        from .supervisor import FleetSupervisor
        FleetSupervisor(fleet)
    pending_resizes = dict(resize_at or {})
    killed_shard: Optional[int] = None
    for index in range(spec.requests):
        target = pending_resizes.pop(index, None)
        if target is not None:
            if isinstance(target, int):
                fleet.resize(target)
            else:
                fleet.resize(members=list(target))
        request = make_request(spec, index)
        if kill_at is not None and index == kill_at:
            if not processes:
                raise ValueError("kill_at requires process mode")
            killed_shard = fleet.owner(request.ctx.loop_name)
            fleet.kill_shard(killed_shard)
        fleet.submit(request)
    report = fleet.close()
    _check_fleet_decisions(spec, fleet.decisions)
    if kill_at is not None and report.failovers < 1:
        raise SoakInvariantError(
            f"shard {killed_shard} was killed at request {kill_at} "
            "but no failover was recorded"
        )
    if resize_at and report.resizes < len(dict(resize_at)):
        raise SoakInvariantError(
            f"{len(dict(resize_at))} resizes were scheduled but only "
            f"{report.resizes} were recorded"
        )
    return report, list(fleet.decisions), dict(fleet.stream_states)


def verify_fleet_recovery(
    spec: SoakSpec,
    bundle: ExpertBundle,
    kill_at: int,
    state_root: Union[str, Path],
    *,
    config: Optional[FleetConfig] = None,
) -> dict:
    """Shard-kill vs uninterrupted twin: lossless fleet failover check.

    Twin A runs the stream through an *inline* fleet (same sharding,
    same micro-batch code path, no processes, nothing to kill).  Twin B
    runs it through a process fleet whose owning shard is SIGKILLed at
    ``kill_at``.  Afterwards every stream's online-learning state must
    be bit-identical between the twins, and every decision B actually
    served (everything except its ``recovered`` re-delivery markers)
    must equal A's decision for the same request.
    """
    if not 0 < kill_at < spec.requests:
        raise ValueError("kill_at must fall inside the stream")
    config = config or FleetConfig()
    state_root = Path(state_root)

    twin_report, twin_decisions, twin_states = run_fleet_soak(
        spec, bundle, config=config, state_root=state_root / "twin",
        processes=False,
    )
    crash_report, crash_decisions, crash_states = run_fleet_soak(
        spec, bundle, config=config, state_root=state_root / "crashed",
        processes=True, kill_at=kill_at,
    )

    _compare_stream_states(twin_states, crash_states, "failover")
    recovered, compared = _compare_decisions(
        twin_decisions, crash_decisions, "failover")
    return {
        "kill_at": kill_at,
        "shards": config.shards,
        "failovers": crash_report.failovers,
        "recovered": recovered,
        "compared_decisions": compared,
        "identical": True,
    }


def verify_resize(
    spec: SoakSpec,
    bundle: ExpertBundle,
    resize_at: Mapping[int, Union[int, Sequence[int]]],
    state_root: Union[str, Path],
    *,
    kill_at: Optional[int] = None,
    config: Optional[FleetConfig] = None,
) -> dict:
    """Live resharding vs uninterrupted twin: lossless migration check.

    Twin A runs the stream through an *inline* fleet that never
    changes shape — no resizes, no processes, nothing to kill.  Twin B
    runs it through a supervised process fleet that is live-resized at
    every index in ``resize_at`` (e.g. ``{100: 4, 200: 3}`` for the
    canonical 2→4→3 walk) and, with ``kill_at``, additionally loses a
    shard to SIGKILL mid-soak.  Because each stream's decisions depend
    only on the stream's own request prefix — never on fleet shape or
    placement — B must end with every stream's selector state
    bit-identical to A's, and every decision B actually served
    (excluding ``recovered`` re-delivery markers) must equal A's.
    """
    if not resize_at:
        raise ValueError("resize_at must schedule at least one resize")
    for index in resize_at:
        if not 0 <= index < spec.requests:
            raise ValueError(
                f"resize at {index} falls outside the stream")
    config = config or FleetConfig()
    state_root = Path(state_root)

    twin_report, twin_decisions, twin_states = run_fleet_soak(
        spec, bundle, config=config, state_root=state_root / "twin",
        processes=False,
    )
    resized_report, resized_decisions, resized_states = run_fleet_soak(
        spec, bundle, config=config, state_root=state_root / "resized",
        processes=True, kill_at=kill_at, resize_at=resize_at,
        supervise=True,
    )

    _compare_stream_states(twin_states, resized_states, "resharding")
    recovered, compared = _compare_decisions(
        twin_decisions, resized_decisions, "resharding")
    return {
        "resize_at": {int(k): v for k, v in sorted(resize_at.items())},
        "kill_at": kill_at,
        "resizes": resized_report.resizes,
        "epochs": resized_report.epochs,
        "final_shards": resized_report.shards,
        "streams_migrated": resized_report.streams_migrated,
        "failovers": resized_report.failovers,
        "restarts": resized_report.restarts,
        "recovered": recovered,
        "compared_decisions": compared,
        "streams": len(twin_states),
        "identical": True,
    }


def _compare_stream_states(twin_states: Dict[str, dict],
                           other_states: Dict[str, dict],
                           what: str) -> None:
    """Per-stream bit-identity of exported selector state."""
    if set(twin_states) != set(other_states):
        raise SoakInvariantError(
            f"stream sets diverged after {what}: twin "
            f"{sorted(twin_states)} vs {sorted(other_states)}"
        )
    for stream in sorted(twin_states):
        mismatches = _state_mismatches(
            twin_states[stream]["selector"],
            other_states[stream]["selector"],
        )
        if mismatches:
            raise SoakInvariantError(
                f"stream {stream!r} selector state diverged after "
                f"{what}: " + ", ".join(mismatches)
            )


def _compare_decisions(twin_decisions: List[ServeDecision],
                       other_decisions: List[ServeDecision],
                       what: str) -> Tuple[int, int]:
    """Bit-identical served decisions, ``recovered`` markers exempt.

    The interrupted run's ``recovered`` markers stand in for answers
    that were journaled but whose delivery died with a shard;
    everything it actually served must match the twin.  Returns the
    (recovered, compared) counts.
    """
    by_index = {d.index: d for d in twin_decisions}
    compared = 0
    recovered = 0
    for decision in other_decisions:
        if decision.tier == RECOVERED_TIER:
            recovered += 1
            continue
        twin_decision = by_index[decision.index]
        if (decision.threads, decision.tier, decision.shed) != (
                twin_decision.threads, twin_decision.tier,
                twin_decision.shed):
            raise SoakInvariantError(
                f"decision {decision.index} diverged after {what}: "
                f"{decision.threads}@{decision.tier} vs twin "
                f"{twin_decision.threads}@{twin_decision.tier}"
            )
        compared += 1
    return recovered, compared


def _state_mismatches(left: dict, right: dict) -> List[str]:
    """Field names on which two selector states differ at all."""
    mismatches = []
    for key in sorted(set(left) | set(right)):
        a, b = left.get(key), right.get(key)
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            if not np.array_equal(np.asarray(a), np.asarray(b)):
                mismatches.append(key)
        elif a != b:
            mismatches.append(key)
    return mismatches
