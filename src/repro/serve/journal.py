"""Crash-safe online-learning state: write-ahead journal + snapshots.

The serving runtime's durability story has two layers, both built on
the checksummed-document primitives in :mod:`repro.core.persistence`:

* a **journal** (:class:`SelectorJournal`) — one JSON line per served
  request, carrying the selector/mixture operations that request
  performed (captured by an :class:`_OpBuffer` attached through
  :meth:`~repro.core.selector.HyperplaneSelector.attach_journal`) plus
  the circuit breaker's compact state.  Each line embeds a checksum; a
  torn tail (the classic crash artifact) is detected, quarantined for
  post-mortem, and truncated away;
* periodic **snapshots** (:class:`SnapshotStore`) — checksummed,
  atomically-written documents of the full online state.  A corrupt
  snapshot is quarantined and recovery falls back to the previous one.

Recovery = newest good snapshot + replay of journal records with a
higher request index, driven through the selector's *real*
``update``/``select`` methods — so the restored hyperplanes, running
normalizer, and tie-breaker phase are bit-identical to the state at the
moment of the crash (see ``tests/serve/test_crash_recovery.py``).

Durability model: records are flushed to the OS on every commit, so
state survives any *process* death (kill -9, unhandled exception, OOM).
Surviving power loss would additionally need an fsync per record, which
costs more per decision than the decision itself; a mapping runtime
restarted after power loss retrains cheaply from the last snapshot.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.persistence import (
    ChecksumError,
    atomic_copy,
    dump_checked_json,
    load_checked_json,
    payload_checksum,
    prune_quarantine,
)

#: Snapshots retained on disk.  Two, not one: the newest may be the
#: crash victim, and then its predecessor is the recovery point.
SNAPSHOTS_KEPT = 2


class _OpBuffer:
    """Collects one request's state-mutating operations, in order.

    Implements both sink protocols
    (:class:`~repro.core.selector.SelectorJournalSink` and
    :class:`~repro.core.policies.mixture.MixtureJournalSink`); the
    server drains it into one journal record per request.
    """

    def __init__(self) -> None:
        self.ops: List[list] = []

    def record_update(self, features, errors) -> None:
        self.ops.append([
            "update",
            [float(v) for v in np.asarray(features, dtype=float)],
            [float(e) for e in errors],
        ])

    def record_select(self, features) -> None:
        self.ops.append([
            "select",
            [float(v) for v in np.asarray(features, dtype=float)],
        ])

    def record_clear(self) -> None:
        self.ops.append(["clear"])

    def drain(self) -> List[list]:
        ops, self.ops = self.ops, []
        return ops


class SelectorJournal:
    """Append-only, per-record-checksummed journal of served requests.

    One line per record: ``{"req": k, "ops": [...], "extra": {...},
    "crc": "..."}`` where ``crc`` covers everything else.  Lines are
    written whole and flushed; a crash can therefore only damage the
    final line, which :meth:`replay` detects, quarantines and truncates.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = None
        self.records_written = 0
        self.tails_quarantined = 0

    # -- writing ----------------------------------------------------------

    def append(self, req: int, ops: Sequence[list],
               extra: Optional[dict] = None) -> None:
        record = {"req": int(req), "ops": list(ops),
                  "extra": extra or {}}
        record["crc"] = payload_checksum(
            {"req": record["req"], "ops": record["ops"],
             "extra": record["extra"]}
        )
        if self._fh is None:
            self._fh = open(self.path, "a")
        self._fh.write(
            json.dumps(record, allow_nan=False, sort_keys=True) + "\n"
        )
        self._fh.flush()
        self.records_written += 1

    def sync(self) -> None:
        """fsync the journal file (the migration drain barrier).

        Steady-state appends flush to the OS only (see the module
        docstring's durability model); a stream about to be *shipped*
        to another shard is different — the copy must observe every
        record, so the drain barrier pays one explicit fsync per
        migrating stream before the hand-off.
        """
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def truncate(self) -> None:
        """Empty the journal (its contents are covered by a snapshot)."""
        self.close()
        # Truncation IS the committed state here: the snapshot written
        # just before covers every record, so a crash mid-truncate only
        # leaves records that replay filters out by request index.
        with open(self.path, "w"):  # sanitize: ok S003
            pass

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- reading ----------------------------------------------------------

    def _quarantine_tail(self, good_bytes: int) -> None:
        """Move the undecodable tail aside and truncate to the good
        prefix, so the next append continues a clean journal."""
        quarantine = self.path.parent / "quarantine"
        quarantine.mkdir(parents=True, exist_ok=True)
        with open(self.path, "rb") as fh:
            fh.seek(good_bytes)
            tail = fh.read()
        target = quarantine / f"{self.path.name}.tail-{good_bytes}"
        # Quarantine evidence is best-effort post-mortem material, not
        # recovery state; a torn quarantine file loses nothing.
        with open(target, "wb") as fh:  # sanitize: ok S003
            fh.write(tail)
        with open(self.path, "rb+") as fh:
            fh.truncate(good_bytes)
        self.tails_quarantined += 1
        prune_quarantine(quarantine)

    def replay(self, after_req: int = -1) -> Iterator[Tuple[int, list, dict]]:
        """Yield ``(req, ops, extra)`` for good records with
        ``req > after_req``; stops at (and repairs) a torn tail.

        Materialised eagerly so the tail repair happens even if the
        caller stops consuming early.
        """
        if not self.path.exists():
            return iter(())
        records: List[Tuple[int, list, dict]] = []
        good_bytes = 0
        damaged = False
        with open(self.path, "rb") as fh:
            for raw in fh:
                try:
                    line = raw.decode("utf-8")
                    record = json.loads(line)
                    payload = {"req": record["req"], "ops": record["ops"],
                               "extra": record.get("extra", {})}
                    if record.get("crc") != payload_checksum(payload):
                        raise ValueError("crc mismatch")
                except (KeyError, TypeError, ValueError,
                        UnicodeDecodeError):
                    damaged = True
                    break
                good_bytes += len(raw)
                if payload["req"] > after_req:
                    records.append((payload["req"], payload["ops"],
                                    payload["extra"]))
        if damaged:
            self._quarantine_tail(good_bytes)
        return iter(records)


class SnapshotStore:
    """Checksummed full-state snapshots with bounded retention.

    Snapshot files are named by request index
    (``snapshot-<req>.json``), written atomically; the newest
    :data:`SNAPSHOTS_KEPT` are retained.  :meth:`load_latest` verifies
    checksums newest-first, quarantining any corrupt snapshot and
    falling back to its predecessor.
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.snapshots_written = 0
        self.snapshots_quarantined = 0

    def _snapshot_paths(self) -> List[Path]:
        return sorted(self.directory.glob("snapshot-*.json"), reverse=True)

    def save(self, req: int, state: dict) -> Path:
        path = self.directory / f"snapshot-{req:012d}.json"
        dump_checked_json({"req": int(req), "state": state}, path)
        self.snapshots_written += 1
        for stale in self._snapshot_paths()[SNAPSHOTS_KEPT:]:
            try:
                stale.unlink()
            except OSError:
                pass
        return path

    def _quarantine(self, path: Path) -> None:
        quarantine = self.directory / "quarantine"
        quarantine.mkdir(parents=True, exist_ok=True)
        try:
            os.replace(path, quarantine / path.name)
        except OSError:
            return
        self.snapshots_quarantined += 1
        prune_quarantine(quarantine)

    def load_latest(self) -> Optional[Tuple[int, dict]]:
        """Newest verifiable snapshot as ``(req, state)``, or None."""
        for path in self._snapshot_paths():
            try:
                payload = load_checked_json(path)
                return int(payload["req"]), payload["state"]
            except (ChecksumError, KeyError, TypeError, ValueError):
                self._quarantine(path)
        return None


def ship_state(source: Union[str, Path],
               destination: Union[str, Path]) -> List[Path]:
    """Ship a serve-state directory to ``destination`` (atomic copy).

    The fleet's failover primitive: the replacement shard recovers
    from a *copy* of the dead generation's state, exactly as a standby
    on another machine would, and the original survives for
    post-mortem.  Ships the retained snapshots plus the journal —
    each file lands via temp + ``os.replace``, so a crash mid-shipping
    leaves no observably partial file.  A torn journal tail (the
    expected artifact of a SIGKILLed shard) is copied byte-for-byte;
    replay on the receiving side quarantines and truncates it, which
    is precisely the recovery path an in-place restart takes.

    Returns the shipped destination paths.  Shipping from a directory
    that never materialised (a shard killed before its first commit)
    yields an empty destination, from which recovery correctly starts
    at request 0.
    """
    source = Path(source)
    destination = Path(destination)
    destination.mkdir(parents=True, exist_ok=True)
    shipped: List[Path] = []
    if source.is_dir():
        for path in sorted(source.glob("snapshot-*.json")):
            shipped.append(atomic_copy(path, destination / path.name))
        journal = source / "journal.jsonl"
        if journal.exists():
            shipped.append(
                atomic_copy(journal, destination / journal.name)
            )
    return shipped


class ServeStateStore:
    """Everything the server needs to forget nothing across a crash.

    Composes the op buffer, journal and snapshot store around one
    :class:`~repro.core.policies.mixture.MixturePolicy`:

    * :meth:`recover` — restore policy state (snapshot + journal
      replay) *before* journaling is attached, returning the index of
      the next request to serve and any persisted extra state;
    * :meth:`attach` — wire the op buffer into the selector and the
      mixture, from which point every mutation is captured;
    * :meth:`commit` — one journal record per served request (written
      even when no ops happened, so the resume point and extra state
      always advance);
    * :meth:`maybe_snapshot` — every ``snapshot_interval`` requests,
      write a full snapshot and truncate the journal it covers.
    """

    def __init__(self, directory: Union[str, Path], policy,
                 snapshot_interval: int = 256):
        if snapshot_interval < 1:
            raise ValueError("snapshot_interval must be >= 1")
        self.directory = Path(directory)
        self.policy = policy
        self.snapshot_interval = snapshot_interval
        self.journal = SelectorJournal(self.directory / "journal.jsonl")
        self.snapshots = SnapshotStore(self.directory)
        self._buffer = _OpBuffer()
        self.recovered_req = -1
        self.replayed_records = 0

    # -- recovery ---------------------------------------------------------

    def _apply_ops(self, ops: Sequence[list]) -> None:
        selector = self.policy.selector
        for op in ops:
            kind = op[0]
            if kind == "update":
                selector.update(np.asarray(op[1], dtype=float), op[2])
            elif kind == "select":
                features = np.asarray(op[1], dtype=float)
                selector.select(features)
                # mixture.select() pairs every selector consult with a
                # fresh pending prediction for the same features.
                self.policy.restore_pending(features)
            elif kind == "clear":
                self.policy.clear_pending()
            else:
                raise ChecksumError(
                    f"journal contains unknown op {kind!r}"
                )

    def recover(self) -> Tuple[int, dict]:
        """Restore the policy; returns ``(next_req, extra_state)``.

        Must run before :meth:`attach` — replayed operations would
        otherwise be journaled a second time.
        """
        last_req = -1
        extra: dict = {}
        snapshot = self.snapshots.load_latest()
        if snapshot is not None:
            last_req, state = snapshot
            self.policy.load_online_state(state["policy"])
            extra = state.get("extra", {})
        for req, ops, record_extra in self.journal.replay(last_req):
            self._apply_ops(ops)
            last_req = req
            extra = record_extra
            self.replayed_records += 1
        self.recovered_req = last_req
        return last_req + 1, extra

    # -- steady state -----------------------------------------------------

    def attach(self) -> None:
        self.policy.selector.attach_journal(self._buffer)
        self.policy.journal = self._buffer

    def detach(self) -> None:
        self.policy.selector.detach_journal()
        self.policy.journal = None

    def commit(self, req: int, extra: Optional[dict] = None) -> None:
        self.journal.append(req, self._buffer.drain(), extra)

    def maybe_snapshot(self, req: int,
                       extra: Optional[dict] = None) -> bool:
        if (req + 1) % self.snapshot_interval != 0:
            return False
        self.snapshot(req, extra)
        return True

    def snapshot(self, req: int, extra: Optional[dict] = None) -> None:
        state = {
            "policy": self.policy.export_online_state(),
            "extra": extra or {},
        }
        # Snapshot first, then truncate: a crash in between leaves the
        # snapshot plus a journal whose records it already covers —
        # replay filters them out by request index.
        self.snapshots.save(req, state)
        self.journal.truncate()

    def sync(self) -> None:
        """Journal-barrier fsync (see :meth:`SelectorJournal.sync`)."""
        self.journal.sync()

    def close(self) -> None:
        self.journal.close()

    def stats(self) -> dict:
        return {
            "journal_records": self.journal.records_written,
            "journal_tails_quarantined": self.journal.tails_quarantined,
            "snapshots_written": self.snapshots.snapshots_written,
            "snapshots_quarantined": self.snapshots.snapshots_quarantined,
            "replayed_records": self.replayed_records,
            "recovered_req": self.recovered_req,
        }
