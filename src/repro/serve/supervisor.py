"""Fleet supervision: heartbeats, liveness verdicts, restart budgets.

The fleet's dispatch path only notices a dead shard when it *talks* to
it — a shard that dies (or wedges) while idle would sit undetected, and
one that crash-loops would restart forever.  The supervisor closes both
gaps from the parent's event loop (:meth:`tick` rides on
``PolicyFleet.poll``), with no extra threads:

* **Heartbeats** — periodic ``("ping", seq)`` over each shard's
  control pipe; the worker echoes ``("pong", seq)`` from its message
  loop, so a pong also proves the serving loop is draining, not just
  that the process exists.  Replies are skimmed by whichever receive
  path runs next and refresh the shard's ``last_activity``.
* **Liveness verdicts** — a shard silent past ``liveness_timeout_s``
  is declared lost (the same deadline bounds every blocking control
  receive, so a worker dying between claiming a ring slot and posting
  its doorbell raises :class:`~repro.serve.fleet.ShardLostError`
  instead of hanging the parent).
* **Restart budgets** — each loss spends one restart from the
  member's budget, with exponential backoff and deterministic jitter
  (the executor's :class:`~repro.exec.fault.RetryPolicy`).  An
  exhausted budget flips the verdict to *evacuate*: the ring re-homes
  the member's streams onto survivors (state shipped on first
  arrival), and :meth:`reinstate` shrinks the overflow back later via
  a normal resize.  Planned drains and crash failovers share one
  reclamation path — the topology-driven ownership sweep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..exec.fault import RetryPolicy
from .fleet import _ProcessShard


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs of the supervising fleet controller."""

    #: Seconds between heartbeats to each shard.
    heartbeat_interval_s: float = 1.0
    #: Silence (no message of any kind) after which a shard is lost.
    liveness_timeout_s: float = 10.0
    #: Crash-failover restarts granted per member before evacuation.
    max_restarts: int = 3
    #: Backoff between restarts of the same member (deterministic
    #: jitter: reruns sleep the same amounts).
    restart_backoff: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_retries=3, base_delay=0.05, max_delay=2.0
        )
    )

    def __post_init__(self) -> None:
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        if self.liveness_timeout_s <= self.heartbeat_interval_s:
            raise ValueError(
                "liveness_timeout_s must exceed heartbeat_interval_s "
                "(a shard must get at least one ping per deadline)"
            )
        if self.max_restarts < 0:
            raise ValueError("max_restarts cannot be negative")


class FleetSupervisor:
    """Health layer over a :class:`~repro.serve.fleet.PolicyFleet`.

    Attaching registers the supervisor as the fleet's loss arbiter:
    every shard loss — torn pipe, doorbell timeout, or heartbeat
    deadline — flows through :meth:`verdict`, which spends restart
    budget or orders evacuation.  Construct after the fleet, before
    serving.
    """

    def __init__(self, fleet, config: Optional[SupervisorConfig] = None,
                 *, clock: Optional[Callable[[], float]] = None,
                 sleep: Callable[[float], None] = time.sleep):
        self.fleet = fleet
        self.config = config or SupervisorConfig()
        self._clock = clock if clock is not None else fleet._clock
        self._sleep = sleep
        self._seq = 0
        self._last_ping: Dict[int, float] = {}
        #: Restarts spent per member id (the budget ledger).
        self.restarts: Dict[int, int] = {}
        #: Members currently evacuated (budget exhausted).
        self.evacuated: List[int] = []
        fleet._supervisor = self
        for shard in fleet._shards.values():
            self._adopt(shard)

    def _adopt(self, shard) -> None:
        """Tie the shard's control-pipe deadline to the liveness
        verdict — a hang and a heartbeat miss become the same event."""
        if isinstance(shard, _ProcessShard):
            shard.recv_timeout_s = self.config.liveness_timeout_s

    # -- the event-loop hook -----------------------------------------------

    def tick(self) -> None:
        """One supervision pass: ping, skim replies, judge deadlines.

        Called from ``PolicyFleet.poll()`` so supervision advances
        exactly as often as serving does.
        """
        for index in list(self.fleet._shards):
            shard = self.fleet._shards.get(index)
            if not isinstance(shard, _ProcessShard):
                continue
            self._adopt(shard)  # covers failover replacements
            now = self._clock()
            try:
                if (now - self._last_ping.get(index, 0.0)
                        >= self.config.heartbeat_interval_s):
                    self._seq += 1
                    shard.ping(self._seq)
                    self._last_ping[index] = now
                # Skim pongs only while nothing is in flight — when
                # decisions are outstanding the collect path reads the
                # pipe (and refreshes last_activity) itself, and tick
                # must not steal a decision doorbell.
                if not shard.inflight:
                    while shard.conn.poll():
                        message = shard.conn.recv()
                        shard.last_activity = self._clock()
                        if message[0] != "pong":  # pragma: no cover
                            raise RuntimeError(
                                f"unexpected idle message {message[0]!r}"
                            )
            except self.fleet._PIPE_ERRORS:
                self._declare_lost(index)
                continue
            if (self._clock() - shard.last_activity
                    > self.config.liveness_timeout_s):
                self.fleet.events.bump("heartbeat_timeouts")
                self._declare_lost(index)

    def _declare_lost(self, index: int) -> None:
        self._last_ping.pop(index, None)
        self.fleet._redeliver(self.fleet._handle_loss(index), deaths=1)

    # -- the loss arbiter --------------------------------------------------

    def verdict(self, index: int) -> str:
        """Restart or evacuate a lost member; spends budget, sleeps
        backoff.  Called by the fleet on every loss, whatever path
        detected it."""
        used = self.restarts.get(index, 0)
        if (used >= self.config.max_restarts
                and len(self.fleet.members) > 1):
            if index not in self.evacuated:
                self.evacuated.append(index)
            return "evacuate"
        self.restarts[index] = used + 1
        self.fleet.events.bump("restarts")
        self._sleep(self.config.restart_backoff.delay(
            min(used + 1, self.config.max_restarts or 1),
            f"shard-{index}",
        ))
        return "restart"

    def reinstate(self, index: int):
        """Bring an evacuated member back: a normal resize re-adds it
        to the ring and migrates its home streams off the survivors
        (shrinking the graceful-degradation overflow back).  Resets
        the member's restart budget.  Returns the executed plan.
        """
        if index not in self.evacuated:
            raise ValueError(f"member {index} is not evacuated")
        plan = self.fleet.resize(
            members=sorted(set(self.fleet.members) | {index})
        )
        self.evacuated.remove(index)
        self.restarts[index] = 0
        self.fleet.events.bump("reinstatements")
        return plan
