"""Quickstart: map one program with the mixture of experts.

Runs lu co-executing with mg on the simulated 32-core machine under a
dynamically changing processor count, once with the OpenMP default and
once with the mixture-of-experts policy, and prints the speedup.

Run with::

    python examples/quickstart.py
"""

from repro import (
    CoExecutionEngine,
    DefaultPolicy,
    JobSpec,
    MixturePolicy,
    PeriodicAvailability,
    SimMachine,
    XEON_L7555,
    default_experts,
    get_program,
)


def run_with(policy):
    machine = SimMachine(
        topology=XEON_L7555,
        availability=PeriodicAvailability(
            max_processors=XEON_L7555.cores, seed=1,
        ),
    )
    engine = CoExecutionEngine(
        machine=machine,
        jobs=[
            JobSpec(program=get_program("lu"), policy=policy,
                    job_id="target", is_target=True),
            JobSpec(program=get_program("mg"), policy=DefaultPolicy(),
                    job_id="workload", restart=True),
        ],
    )
    return engine.run()


def main():
    print("training the experts (cached after the first run)...")
    bundle = default_experts()
    for expert in bundle.experts:
        print(f"  {expert.name}: {expert.provenance} "
              f"({bundle.samples_per_expert[expert.name]} samples)")

    print("\nrunning lu + mg with the OpenMP default policy...")
    baseline = run_with(DefaultPolicy())
    print(f"  default:  lu finished in {baseline.target_time:7.1f}s")

    print("running lu + mg with the mixture of experts...")
    mixture_policy = MixturePolicy(bundle.experts)
    smart = run_with(mixture_policy)
    print(f"  mixture:  lu finished in {smart.target_time:7.1f}s")

    speedup = baseline.target_time / smart.target_time
    print(f"\nspeedup over the OpenMP default: {speedup:.2f}x")
    counts = mixture_policy.selection_counts()
    for index, count in enumerate(counts, start=1):
        print(f"  expert E{index} selected {count} times")


if __name__ == "__main__":
    main()
