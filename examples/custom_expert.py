"""Extend the mixture with your own expert.

The paper's Section 4.1: "Any (potentially external) expert that
determines these two parameters [thread predictor and environment
predictor], via whatever means, can be included in the existing
mixture."  This example builds a hand-crafted "fair-share" expert —
threads = available processors minus external load, environment
predicted by persistence — retrofits the two linear models for it by
fitting them to its own decisions on the training data, and adds it as
a fifth expert.

Run with::

    python examples/custom_expert.py
"""

import numpy as np

from repro import (
    MixturePolicy,
    default_experts,
    get_program,
)
from repro.core.expert import Expert
from repro.core.features import FEATURE_NAMES
from repro.core.regression import fit_least_squares
from repro.core.training import training_dataset
from repro.experiments.runner import run_target
from repro.experiments.scenarios import SMALL_LOW
from repro.workload.spec import workload_sets


def fair_share_threads(features: np.ndarray) -> int:
    """The hand-written policy: my share = processors - load/2."""
    workload = features[3]
    processors = features[4]
    return int(max(1, round(processors - workload / 2.0)))


def build_fair_share_expert() -> Expert:
    """Retrofit (w, m) models for the hand-written policy.

    The paper: hand-crafted experts need an environment predictor
    created for them; we fit both linear models against the policy's
    own decisions and the recorded next environments on the shared
    training data.
    """
    samples, _ = training_dataset()
    X = np.stack([s.features for s in samples])
    thread_targets = np.array(
        [fair_share_threads(s.features) for s in samples], dtype=float,
    )
    env_targets = np.array([s.next_env_norm for s in samples])
    return Expert(
        name="E5-fair-share",
        thread_model=fit_least_squares(
            X, thread_targets, feature_names=FEATURE_NAMES,
            ridge=1.0, standardize=True,
        ),
        env_model=fit_least_squares(
            X, env_targets, feature_names=FEATURE_NAMES,
            ridge=1.0, standardize=True,
        ),
        provenance="hand-crafted fair-share policy",
        feature_low=X.min(axis=0),
        feature_high=X.max(axis=0),
    )


def main():
    bundle = default_experts()
    custom = build_fair_share_expert()
    print(f"built {custom.name}: {custom.provenance}")

    workload = workload_sets("small")[0]
    for label, experts in (
        ("4 experts", bundle.experts),
        ("4 experts + fair-share", bundle.experts + (custom,)),
    ):
        policy = MixturePolicy(experts)
        outcome = run_target(
            "bodytrack", policy, SMALL_LOW,
            workload_set=workload, seed=0,
        )
        counts = policy.selection_counts()
        print(f"{label:24s} bodytrack: {outcome.target_time:7.1f}s  "
              f"selections={counts}")

    print("\nThe selector only routes to the new expert where its "
          "environment predictions beat the others' — adding expertise "
          "never requires retraining the existing experts.")


if __name__ == "__main__":
    main()
