"""Scenario: ride out a partial hardware failure in a busy datacenter.

Replays the paper's Section 7.5 case study: a live-system demand trace
is scaled down onto the 32-core machine, and half the processors
disappear for a window mid-run.  The example compares how each policy
steers the target program (cg) through the failure, and prints the
thread choices around the failure window.

Run with::

    python examples/datacenter_failover.py
"""

from repro import (
    CoExecutionEngine,
    DefaultPolicy,
    FailureWindow,
    JobSpec,
    MixturePolicy,
    OnlineHillClimbPolicy,
    SimMachine,
    StaticAvailability,
    XEON_L7555,
    default_experts,
    generate_live_trace,
    get_program,
)
from repro.experiments.live_case_study import (
    TracePlayerPolicy,
    scaled_schedule,
)

REPLAY_DURATION = 300.0
FAILURE_START = 30.0
FAILURE_END = 80.0


def run_with(policy, schedule):
    machine = SimMachine(
        topology=XEON_L7555,
        availability=FailureWindow(
            base=StaticAvailability(XEON_L7555.cores),
            start=FAILURE_START,
            end=FAILURE_END,
        ),
    )
    engine = CoExecutionEngine(
        machine=machine,
        jobs=[
            JobSpec(program=get_program("cg"), policy=policy,
                    job_id="target", is_target=True),
            JobSpec(program=get_program("mg"),
                    policy=TracePlayerPolicy(schedule),
                    job_id="datacenter", restart=True),
        ],
        max_time=7200.0,
    )
    return engine.run()


def main():
    print("generating the live-system trace and scaling it down...")
    trace = generate_live_trace(seed=2015)
    schedule = scaled_schedule(trace, REPLAY_DURATION, XEON_L7555.cores)
    print(f"  {len(schedule)} schedule points over {REPLAY_DURATION:.0f}s; "
          f"failure window {FAILURE_START:.0f}-{FAILURE_END:.0f}s "
          f"(half the machine lost)")

    bundle = default_experts()
    policies = {
        "default": DefaultPolicy(),
        "online": OnlineHillClimbPolicy(),
        "mixture": MixturePolicy(bundle.experts),
    }
    times = {}
    for name, policy in policies.items():
        result = run_with(policy, schedule)
        times[name] = result.target_time
        print(f"  {name:8s} cg finished in {result.target_time:7.1f}s")
        if name == "mixture":
            around_failure = [
                (round(s.time), s.threads)
                for s in result.target_selections()
                if FAILURE_START - 20 <= s.time <= FAILURE_END + 20
            ]
            print("  mixture thread choices around the failure:")
            print("   ", around_failure[:: max(1, len(around_failure) // 12)])

    print(f"\nmixture speedup over default: "
          f"{times['default'] / times['mixture']:.2f}x")


if __name__ == "__main__":
    main()
