"""Scenario: every tenant of a shared machine runs a smart runtime.

The paper's Result 4 ("a win-win situation"): when co-executing
programs *all* adapt with the mixture-of-experts policy, the system
stabilises and everyone finishes faster than under the OpenMP default
— they stop fighting over cores.

This example runs three programs together (a CFD solver, a sparse
solver and a vision pipeline), once with everyone on the default
policy and once with everyone on the mixture, and prints per-program
speedups.

Run with::

    python examples/smart_cluster.py
"""

from repro import (
    CoExecutionEngine,
    DefaultPolicy,
    JobSpec,
    MixturePolicy,
    PeriodicAvailability,
    SimMachine,
    XEON_L7555,
    default_experts,
    get_program,
)

TENANTS = ("lu", "cg", "bodytrack")


def run_cluster(policy_factory):
    machine = SimMachine(
        topology=XEON_L7555,
        availability=PeriodicAvailability(
            max_processors=XEON_L7555.cores, seed=7,
        ),
    )
    jobs = [
        JobSpec(program=get_program(name), policy=policy_factory(),
                job_id=name)
        for name in TENANTS
    ]
    engine = CoExecutionEngine(machine=machine, jobs=jobs,
                               max_time=7200.0)
    return engine.run().job_times


def main():
    bundle = default_experts()

    print("all tenants on the OpenMP default policy...")
    baseline = run_cluster(DefaultPolicy)
    for name, time in baseline.items():
        print(f"  {name:10s} {time:7.1f}s")

    print("all tenants on the mixture of experts...")
    smart = run_cluster(lambda: MixturePolicy(bundle.experts))
    for name, time in smart.items():
        print(f"  {name:10s} {time:7.1f}s "
              f"({baseline[name] / time:4.2f}x)")

    geo = 1.0
    for name in TENANTS:
        geo *= baseline[name] / smart[name]
    geo **= 1.0 / len(TENANTS)
    print(f"\nmean per-tenant speedup: {geo:.2f}x — nobody pays for "
          f"everyone else's smartness")


if __name__ == "__main__":
    main()
