"""Inspect a mapped run with the tick tracer and text charts.

Attaches a :class:`~repro.TickTracer` to a co-execution run, then uses
:mod:`repro.reporting` to draw the thread/grant timelines as text and
export the full trace to CSV — the workflow for answering "what did the
policy actually do at t₀?" questions (the paper's Figure 2 analysis).

Run with::

    python examples/trace_a_run.py
"""

from repro import (
    CoExecutionEngine,
    DefaultPolicy,
    JobSpec,
    MixturePolicy,
    PeriodicAvailability,
    SimMachine,
    TickTracer,
    XEON_L7555,
    default_experts,
    get_program,
    reporting,
)


def main():
    bundle = default_experts()
    tracer = TickTracer(period=0.5)
    machine = SimMachine(
        topology=XEON_L7555,
        availability=PeriodicAvailability(max_processors=32, seed=11),
    )
    engine = CoExecutionEngine(
        machine=machine,
        jobs=[
            JobSpec(program=get_program("mg"),
                    policy=MixturePolicy(bundle.experts),
                    job_id="target", is_target=True),
            JobSpec(program=get_program("is"), policy=DefaultPolicy(),
                    job_id="workload", restart=True),
        ],
        tracer=tracer,
    )
    result = engine.run()
    print(f"mg finished in {result.target_time:.1f}s; "
          f"{len(tracer.rows)} trace rows recorded\n")

    target = tracer.series("target")
    workload = tracer.series("workload")
    print(reporting.timeline_chart(
        [(t, threads) for t, threads, _ in target],
        label="target threads  ",
    ))
    print(reporting.timeline_chart(
        [(t, granted) for t, _, granted in target],
        label="target granted  ",
    ))
    print(reporting.timeline_chart(
        [(t, threads) for t, threads, _ in workload],
        label="workload threads",
    ))
    print(reporting.timeline_chart(
        [(row.time, row.available) for row in tracer.rows],
        label="processors      ",
    ))

    print(f"\nmean machine utilisation: {tracer.utilisation():.0%}")
    efficiency = result.efficiency(
        "target", get_program("mg").total_work,
    )
    print(f"target efficiency (work / cpu-time): {efficiency:.0%}")

    path = tracer.to_csv("/tmp/repro_trace.csv")
    print(f"full trace written to {path}")


if __name__ == "__main__":
    main()
