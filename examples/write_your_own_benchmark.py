"""Define a new benchmark program in the IR and map it.

Programs in this library are not black boxes: they are written in a
small compiler IR, and everything the runtime knows about them (static
features, scaling behaviour, memory intensity) is *derived* from that
IR.  This example writes a new program — a graph-analytics kernel with
an irregular gather phase and a compute phase — and shows how the
mixture handles it, despite it never appearing in training.

Run with::

    python examples/write_your_own_benchmark.py
"""

from repro import (
    CoExecutionEngine,
    DefaultPolicy,
    IRBuilder,
    JobSpec,
    MixturePolicy,
    PeriodicAvailability,
    SimMachine,
    XEON_L7555,
    default_experts,
    get_program,
)
from repro.compiler.ir import AccessPattern, Schedule
from repro.compiler.passes import analyze_module
from repro.programs.model import build_program


def build_pagerank():
    b = IRBuilder("pagerank")
    with b.function("iterate"):
        # Pull-based gather: irregular reads of neighbour ranks, each
        # vertex writes only its own rank — no synchronisation needed.
        with b.parallel_loop("gather", trip_count=20_000,
                             access=AccessPattern.IRREGULAR,
                             schedule=Schedule.DYNAMIC):
            b.gep()
            b.load()
            b.gep()
            b.load()
            b.load()
            b.fmul()
            b.fadd()
            b.fadd()
            b.cmp()
            b.cond_branch()
            b.store()
        # Apply + convergence check: dense update with a reduction.
        with b.parallel_loop("apply", trip_count=12_000,
                             reduction=True):
            b.load()
            b.fmul()
            b.fadd()
            b.store()
            b.reduce()
            b.barrier()
    module = b.build()
    return build_program(
        name="pagerank", suite="custom", module=module,
        iterations=80, work_per_iteration=3.0, serial_fraction=0.02,
    )


def main():
    program = build_pagerank()
    analysis = analyze_module(program.module)
    print("derived properties of the new program:")
    for region in program.regions:
        scaling = region.scaling
        print(f"  {region.loop_name:8s} memory={region.memory_intensity:.2f} "
              f"sync={region.sync_intensity:.3f} "
              f"peak-threads={scaling.peak_threads}")
    print(f"  parallel fraction: {analysis.parallel_fraction:.3f}")

    bundle = default_experts()
    times = {}
    for name, policy in (
        ("default", DefaultPolicy()),
        ("mixture", MixturePolicy(bundle.experts)),
    ):
        machine = SimMachine(
            topology=XEON_L7555,
            availability=PeriodicAvailability(max_processors=32, seed=3),
        )
        engine = CoExecutionEngine(
            machine=machine,
            jobs=[
                JobSpec(program=program, policy=policy,
                        job_id="target", is_target=True),
                JobSpec(program=get_program("cg"), policy=DefaultPolicy(),
                        job_id="workload", restart=True),
            ],
            max_time=7200.0,
        )
        times[name] = engine.run().target_time
        print(f"{name:8s} pagerank finished in {times[name]:7.1f}s")

    print(f"\nspeedup on a never-seen program: "
          f"{times['default'] / times['mixture']:.2f}x")


if __name__ == "__main__":
    main()
